// Package trace defines the canonical distributed-trace model used by every
// component of the Sleuth reproduction.
//
// The model is the OpenTelemetry field subset selected in §3.2.1 of the
// paper: spans are identified for learning purposes by (service, name,
// kind) rather than by their unique span ID, and carry start/end timestamps
// and an error status. Traces are reconstructed from span lists via
// spanID/parentSpanID, after which the package derives the quantities the
// paper's model consumes: the RPC dependency tree, per-span depth,
// exclusive duration (time not overlapped by any child span) and exclusive
// error (an error not originating from a child).
package trace

import (
	"errors"
	"fmt"
	"sort"
)

// Kind is the span kind from the OpenTelemetry tracing specification.
type Kind string

// Span kinds. Client/Server mark the two halves of a synchronous RPC,
// Producer/Consumer the halves of an asynchronous message, and Internal a
// local function span.
const (
	KindClient   Kind = "client"
	KindServer   Kind = "server"
	KindProducer Kind = "producer"
	KindConsumer Kind = "consumer"
	KindInternal Kind = "internal"
)

// Valid reports whether k is one of the five defined span kinds.
func (k Kind) Valid() bool {
	switch k {
	case KindClient, KindServer, KindProducer, KindConsumer, KindInternal:
		return true
	}
	return false
}

// Synchronous reports whether the caller of a span of this kind waits for
// its completion. Producer/consumer spans are fire-and-forget and therefore
// do not contribute to their parent's latency (Eq. 2 models this with
// u = v).
func (k Kind) Synchronous() bool {
	return k != KindProducer && k != KindConsumer
}

// Span is one operation in a distributed trace. Times are microseconds
// since the epoch; Duration is End-Start.
type Span struct {
	TraceID  string `json:"traceId"`
	SpanID   string `json:"spanId"`
	ParentID string `json:"parentSpanId,omitempty"`

	Service string `json:"service"`
	Name    string `json:"name"`
	Kind    Kind   `json:"kind"`

	Start int64 `json:"start"` // microseconds
	End   int64 `json:"end"`   // microseconds

	// Error is true when statusCode indicates failure.
	Error bool `json:"error,omitempty"`

	// Pod and Node locate the instance that produced the span; the RCA
	// stage maps root-cause services onto them (§3.5).
	Pod  string `json:"pod,omitempty"`
	Node string `json:"node,omitempty"`

	// Attrs carries additional attributes. Only a small set is ever
	// consulted; the field exists for codec fidelity.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Duration returns the span's wall-clock duration in microseconds.
func (s *Span) Duration() int64 { return s.End - s.Start }

// OpKey returns the semantic identifier of the operation: service, name and
// kind. Spans sharing an OpKey are instances of the same RPC.
func (s *Span) OpKey() string { return s.Service + "\x1f" + s.Name + "\x1f" + string(s.Kind) }

// Trace is an assembled trace: its spans plus the derived parent/child
// structure. Construct with Assemble; the structural fields are indexes
// into Spans.
type Trace struct {
	TraceID string
	Spans   []*Span

	// parent[i] is the index of span i's parent, or -1 for a root.
	parent []int
	// children[i] lists the child indexes of span i, ordered by start time.
	children [][]int
	// roots lists indexes of spans without a (present) parent.
	roots []int
	// depth[i] is the distance from span i to its root (root = 0).
	depth []int

	exclusiveDur []int64
	exclusiveErr []bool
}

// Assembly errors.
var (
	ErrEmptyTrace  = errors.New("trace: no spans")
	ErrMixedTraces = errors.New("trace: spans from multiple trace IDs")
	ErrDupSpanID   = errors.New("trace: duplicate span ID")
	ErrCycle       = errors.New("trace: parent cycle")
)

// Assemble builds a Trace from a span list. Spans may arrive in any order.
// Orphan spans (parent ID referencing a missing span) are treated as roots,
// mirroring collector behaviour under partial data loss. The span slice is
// retained and sorted in place by start time.
func Assemble(spans []*Span) (*Trace, error) {
	if len(spans) == 0 {
		return nil, ErrEmptyTrace
	}
	tid := spans[0].TraceID
	for _, s := range spans {
		if s.TraceID != tid {
			return nil, fmt.Errorf("%w: %q and %q", ErrMixedTraces, tid, s.TraceID)
		}
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	idx := make(map[string]int, len(spans))
	for i, s := range spans {
		if _, dup := idx[s.SpanID]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDupSpanID, s.SpanID)
		}
		idx[s.SpanID] = i
	}
	t := &Trace{
		TraceID:  tid,
		Spans:    spans,
		parent:   make([]int, len(spans)),
		children: make([][]int, len(spans)),
		depth:    make([]int, len(spans)),
	}
	for i, s := range spans {
		p := -1
		if s.ParentID != "" {
			if pi, ok := idx[s.ParentID]; ok {
				p = pi
			}
		}
		if p == i {
			return nil, fmt.Errorf("%w: span %q is its own parent", ErrCycle, s.SpanID)
		}
		t.parent[i] = p
		if p >= 0 {
			t.children[p] = append(t.children[p], i)
		} else {
			t.roots = append(t.roots, i)
		}
	}
	if err := t.computeDepths(); err != nil {
		return nil, err
	}
	t.computeExclusiveDurations()
	t.computeExclusiveErrors()
	return t, nil
}

// computeDepths fills depth via BFS from the roots and detects cycles
// (spans unreachable from any root imply a parent cycle).
func (t *Trace) computeDepths() error {
	visited := make([]bool, len(t.Spans))
	queue := make([]int, 0, len(t.Spans))
	for _, r := range t.roots {
		visited[r] = true
		t.depth[r] = 0
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, c := range t.children[i] {
			if visited[c] {
				return fmt.Errorf("%w: span %q reached twice", ErrCycle, t.Spans[c].SpanID)
			}
			visited[c] = true
			t.depth[c] = t.depth[i] + 1
			queue = append(queue, c)
		}
	}
	for i, v := range visited {
		if !v {
			return fmt.Errorf("%w: span %q unreachable from any root", ErrCycle, t.Spans[i].SpanID)
		}
	}
	return nil
}

// computeExclusiveDurations derives, for every span, the total time during
// which the span is running but none of its children are — the paper's
// "exclusive duration" (§3.2.2). For the Figure-2 trace: parent P gets
// (t1-t0)+(t5-t4), child A gets (t3-t1), child B gets (t4-t2).
func (t *Trace) computeExclusiveDurations() {
	t.exclusiveDur = make([]int64, len(t.Spans))
	for i, s := range t.Spans {
		kids := t.children[i]
		if len(kids) == 0 {
			t.exclusiveDur[i] = s.Duration()
			continue
		}
		// Clip child intervals to the parent window and merge them.
		type iv struct{ lo, hi int64 }
		ivs := make([]iv, 0, len(kids))
		for _, c := range kids {
			cs := t.Spans[c]
			lo, hi := cs.Start, cs.End
			if lo < s.Start {
				lo = s.Start
			}
			if hi > s.End {
				hi = s.End
			}
			if hi > lo {
				ivs = append(ivs, iv{lo, hi})
			}
		}
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].lo < ivs[b].lo })
		covered := int64(0)
		var curLo, curHi int64
		started := false
		for _, v := range ivs {
			if !started {
				curLo, curHi, started = v.lo, v.hi, true
				continue
			}
			if v.lo <= curHi {
				if v.hi > curHi {
					curHi = v.hi
				}
			} else {
				covered += curHi - curLo
				curLo, curHi = v.lo, v.hi
			}
		}
		if started {
			covered += curHi - curLo
		}
		excl := s.Duration() - covered
		if excl < 0 {
			excl = 0
		}
		t.exclusiveDur[i] = excl
	}
}

// computeExclusiveErrors marks spans whose error cannot be attributed to a
// failing child: an erroring span with no erroring children has an
// exclusive error (§3.2.2).
func (t *Trace) computeExclusiveErrors() {
	t.exclusiveErr = make([]bool, len(t.Spans))
	for i, s := range t.Spans {
		if !s.Error {
			continue
		}
		childErr := false
		for _, c := range t.children[i] {
			if t.Spans[c].Error {
				childErr = true
				break
			}
		}
		t.exclusiveErr[i] = !childErr
	}
}

// Len returns the number of spans.
func (t *Trace) Len() int { return len(t.Spans) }

// Parent returns the index of span i's parent, or -1 for a root.
func (t *Trace) Parent(i int) int { return t.parent[i] }

// Children returns the child indexes of span i (ordered by start time).
// The returned slice must not be modified.
func (t *Trace) Children(i int) []int { return t.children[i] }

// Roots returns the indexes of the root spans.
func (t *Trace) Roots() []int { return t.roots }

// Depth returns the tree depth of span i (roots have depth 0).
func (t *Trace) Depth(i int) int { return t.depth[i] }

// MaxDepth returns the maximum span depth plus one, i.e. the number of
// levels — the "max depth" column of the paper's Table 1.
func (t *Trace) MaxDepth() int {
	max := 0
	for _, d := range t.depth {
		if d > max {
			max = d
		}
	}
	return max + 1
}

// MaxOutDegree returns the largest number of children of any span.
func (t *Trace) MaxOutDegree() int {
	max := 0
	for _, c := range t.children {
		if len(c) > max {
			max = len(c)
		}
	}
	return max
}

// ExclusiveDuration returns the exclusive duration of span i (µs).
func (t *Trace) ExclusiveDuration(i int) int64 { return t.exclusiveDur[i] }

// ExclusiveError reports whether span i has an exclusive error.
func (t *Trace) ExclusiveError(i int) bool { return t.exclusiveErr[i] }

// RootDuration returns the duration of the first root span — the trace's
// end-to-end latency as observed at the entry point.
func (t *Trace) RootDuration() int64 {
	if len(t.roots) == 0 {
		return 0
	}
	return t.Spans[t.roots[0]].Duration()
}

// HasError reports whether any span in the trace carries an error.
func (t *Trace) HasError() bool {
	for _, s := range t.Spans {
		if s.Error {
			return true
		}
	}
	return false
}

// Ancestors returns up to max ancestor indexes of span i, nearest first.
func (t *Trace) Ancestors(i, max int) []int {
	var out []int
	for p := t.parent[i]; p >= 0 && len(out) < max; p = t.parent[p] {
		out = append(out, p)
	}
	return out
}

// CriticalPath returns span indexes on the latency-critical path from the
// first root: at each level it descends into the child whose end time is
// the latest among synchronous children overlapping the tail of the parent.
func (t *Trace) CriticalPath() []int {
	if len(t.roots) == 0 {
		return nil
	}
	var path []int
	i := t.roots[0]
	for {
		path = append(path, i)
		best, bestEnd := -1, int64(-1)
		for _, c := range t.children[i] {
			cs := t.Spans[c]
			if !cs.Kind.Synchronous() {
				continue
			}
			if cs.End > bestEnd {
				best, bestEnd = c, cs.End
			}
		}
		if best < 0 {
			return path
		}
		i = best
	}
}

// Services returns the sorted set of distinct service names in the trace.
func (t *Trace) Services() []string {
	set := make(map[string]struct{})
	for _, s := range t.Spans {
		set[s.Service] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// GroupByTraceID partitions a flat span list by trace ID, preserving the
// relative order of spans within each trace.
func GroupByTraceID(spans []*Span) map[string][]*Span {
	out := make(map[string][]*Span)
	for _, s := range spans {
		out[s.TraceID] = append(out[s.TraceID], s)
	}
	return out
}

// AssembleAll groups spans by trace ID and assembles each group, skipping
// groups that fail validation. It returns the traces sorted by trace ID for
// determinism, along with the number of groups skipped.
func AssembleAll(spans []*Span) (traces []*Trace, skipped int) {
	groups := GroupByTraceID(spans)
	ids := make([]string, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		t, err := Assemble(groups[id])
		if err != nil {
			skipped++
			continue
		}
		traces = append(traces, t)
	}
	return traces, skipped
}
