package trace

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/sleuth-rca/sleuth/internal/xrand"
)

func span(tid, id, parent, svc, name string, kind Kind, start, end int64, errFlag bool) *Span {
	return &Span{
		TraceID: tid, SpanID: id, ParentID: parent,
		Service: svc, Name: name, Kind: kind,
		Start: start, End: end, Error: errFlag,
	}
}

// figure2Trace builds the example trace from the paper's Figure 2:
// parent P spans [0,100], child A [10,60], child B [30,80].
func figure2Trace(t *testing.T) *Trace {
	t.Helper()
	spans := []*Span{
		span("t1", "p", "", "frontend", "handle", KindServer, 0, 100, false),
		span("t1", "a", "p", "svcA", "opA", KindClient, 10, 60, false),
		span("t1", "b", "p", "svcB", "opB", KindClient, 30, 80, false),
	}
	tr, err := Assemble(spans)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAssembleFigure2Structure(t *testing.T) {
	tr := figure2Trace(t)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if len(tr.Roots()) != 1 {
		t.Fatalf("roots = %v", tr.Roots())
	}
	root := tr.Roots()[0]
	if tr.Spans[root].SpanID != "p" {
		t.Fatalf("root = %q", tr.Spans[root].SpanID)
	}
	if got := len(tr.Children(root)); got != 2 {
		t.Fatalf("root children = %d", got)
	}
	if tr.MaxDepth() != 2 {
		t.Fatalf("MaxDepth = %d", tr.MaxDepth())
	}
	if tr.MaxOutDegree() != 2 {
		t.Fatalf("MaxOutDegree = %d", tr.MaxOutDegree())
	}
	if tr.RootDuration() != 100 {
		t.Fatalf("RootDuration = %d", tr.RootDuration())
	}
}

// TestExclusiveDurationFigure2 checks the exact worked example in §3.2.2:
// P gets (t1-t0)+(t5-t4)=30, A gets t3-t1=50, B gets t4-t2=50.
func TestExclusiveDurationFigure2(t *testing.T) {
	tr := figure2Trace(t)
	byID := map[string]int{}
	for i, s := range tr.Spans {
		byID[s.SpanID] = i
	}
	if got := tr.ExclusiveDuration(byID["p"]); got != 30 {
		t.Errorf("exclusive(P) = %d, want 30", got)
	}
	if got := tr.ExclusiveDuration(byID["a"]); got != 50 {
		t.Errorf("exclusive(A) = %d, want 50", got)
	}
	if got := tr.ExclusiveDuration(byID["b"]); got != 50 {
		t.Errorf("exclusive(B) = %d, want 50", got)
	}
}

func TestExclusiveDurationFullyCovered(t *testing.T) {
	spans := []*Span{
		span("t", "p", "", "s", "op", KindServer, 0, 100, false),
		span("t", "c", "p", "s2", "op2", KindClient, 0, 100, false),
	}
	tr, err := Assemble(spans)
	if err != nil {
		t.Fatal(err)
	}
	var p int
	for i, s := range tr.Spans {
		if s.SpanID == "p" {
			p = i
		}
	}
	if got := tr.ExclusiveDuration(p); got != 0 {
		t.Fatalf("fully-covered parent exclusive = %d, want 0", got)
	}
}

func TestExclusiveDurationChildBeyondParent(t *testing.T) {
	// Async child outlives the parent: the overlap must be clipped to the
	// parent window and exclusive duration must never go negative.
	spans := []*Span{
		span("t", "p", "", "s", "op", KindServer, 0, 50, false),
		span("t", "c", "p", "q", "consume", KindProducer, 40, 500, false),
	}
	tr, err := Assemble(spans)
	if err != nil {
		t.Fatal(err)
	}
	var p int
	for i, s := range tr.Spans {
		if s.SpanID == "p" {
			p = i
		}
	}
	if got := tr.ExclusiveDuration(p); got != 40 {
		t.Fatalf("clipped exclusive = %d, want 40", got)
	}
}

func TestExclusiveError(t *testing.T) {
	spans := []*Span{
		span("t", "root", "", "fe", "h", KindServer, 0, 100, true),
		span("t", "mid", "root", "mw", "m", KindClient, 10, 90, true),
		span("t", "leaf", "mid", "be", "l", KindClient, 20, 80, true),
		span("t", "ok", "root", "other", "o", KindClient, 10, 20, false),
	}
	tr, err := Assemble(spans)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]int{}
	for i, s := range tr.Spans {
		byID[s.SpanID] = i
	}
	// Only the leaf's error is exclusive: root and mid errors propagate up
	// from failing children.
	if tr.ExclusiveError(byID["root"]) {
		t.Error("root error should not be exclusive")
	}
	if tr.ExclusiveError(byID["mid"]) {
		t.Error("mid error should not be exclusive")
	}
	if !tr.ExclusiveError(byID["leaf"]) {
		t.Error("leaf error should be exclusive")
	}
	if tr.ExclusiveError(byID["ok"]) {
		t.Error("non-erroring span flagged as exclusive error")
	}
	if !tr.HasError() {
		t.Error("HasError = false")
	}
}

func TestAssembleErrors(t *testing.T) {
	if _, err := Assemble(nil); err != ErrEmptyTrace {
		t.Fatalf("empty: %v", err)
	}
	_, err := Assemble([]*Span{
		span("t1", "a", "", "s", "n", KindServer, 0, 1, false),
		span("t2", "b", "", "s", "n", KindServer, 0, 1, false),
	})
	if err == nil {
		t.Fatal("mixed trace IDs accepted")
	}
	_, err = Assemble([]*Span{
		span("t", "a", "", "s", "n", KindServer, 0, 1, false),
		span("t", "a", "", "s", "n", KindServer, 2, 3, false),
	})
	if err == nil {
		t.Fatal("duplicate span ID accepted")
	}
	_, err = Assemble([]*Span{
		span("t", "a", "b", "s", "n", KindServer, 0, 1, false),
		span("t", "b", "a", "s", "n", KindServer, 0, 1, false),
	})
	if err == nil {
		t.Fatal("two-span cycle accepted")
	}
	_, err = Assemble([]*Span{span("t", "a", "a", "s", "n", KindServer, 0, 1, false)})
	if err == nil {
		t.Fatal("self-parent accepted")
	}
}

func TestOrphanBecomesRoot(t *testing.T) {
	spans := []*Span{
		span("t", "a", "missing", "s", "n", KindServer, 0, 10, false),
		span("t", "b", "a", "s2", "n2", KindClient, 1, 9, false),
	}
	tr, err := Assemble(spans)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Roots()) != 1 {
		t.Fatalf("roots = %d, want 1 (orphan promoted)", len(tr.Roots()))
	}
}

func TestDepthAndAncestors(t *testing.T) {
	spans := []*Span{
		span("t", "r", "", "s0", "n", KindServer, 0, 100, false),
		span("t", "c1", "r", "s1", "n", KindClient, 1, 99, false),
		span("t", "c2", "c1", "s2", "n", KindClient, 2, 98, false),
		span("t", "c3", "c2", "s3", "n", KindClient, 3, 97, false),
	}
	tr, err := Assemble(spans)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]int{}
	for i, s := range tr.Spans {
		byID[s.SpanID] = i
	}
	if tr.Depth(byID["c3"]) != 3 {
		t.Fatalf("depth(c3) = %d", tr.Depth(byID["c3"]))
	}
	anc := tr.Ancestors(byID["c3"], 2)
	if len(anc) != 2 || tr.Spans[anc[0]].SpanID != "c2" || tr.Spans[anc[1]].SpanID != "c1" {
		t.Fatalf("Ancestors = %v", anc)
	}
	if got := tr.Ancestors(byID["c3"], 10); len(got) != 3 {
		t.Fatalf("unbounded ancestors = %d", len(got))
	}
	if tr.MaxDepth() != 4 {
		t.Fatalf("MaxDepth = %d", tr.MaxDepth())
	}
}

func TestCriticalPath(t *testing.T) {
	spans := []*Span{
		span("t", "r", "", "fe", "h", KindServer, 0, 100, false),
		span("t", "fast", "r", "a", "f", KindClient, 10, 30, false),
		span("t", "slow", "r", "b", "s", KindClient, 10, 95, false),
		span("t", "slowleaf", "slow", "c", "l", KindClient, 20, 90, false),
		// Async producer ends latest but must be ignored.
		span("t", "async", "r", "q", "pub", KindProducer, 10, 99, false),
	}
	tr, err := Assemble(spans)
	if err != nil {
		t.Fatal(err)
	}
	path := tr.CriticalPath()
	var ids []string
	for _, i := range path {
		ids = append(ids, tr.Spans[i].SpanID)
	}
	want := []string{"r", "slow", "slowleaf"}
	if len(ids) != len(want) {
		t.Fatalf("critical path = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("critical path = %v, want %v", ids, want)
		}
	}
}

func TestKindHelpers(t *testing.T) {
	for _, k := range []Kind{KindClient, KindServer, KindProducer, KindConsumer, KindInternal} {
		if !k.Valid() {
			t.Errorf("%q should be valid", k)
		}
	}
	if Kind("bogus").Valid() {
		t.Error("bogus kind valid")
	}
	if !KindClient.Synchronous() || KindProducer.Synchronous() || KindConsumer.Synchronous() {
		t.Error("Synchronous classification wrong")
	}
}

func TestServicesAndGroupBy(t *testing.T) {
	spans := []*Span{
		span("t", "a", "", "svcB", "n", KindServer, 0, 10, false),
		span("t", "b", "a", "svcA", "n", KindClient, 1, 9, false),
		span("t", "c", "a", "svcA", "n2", KindClient, 2, 8, false),
	}
	tr, err := Assemble(spans)
	if err != nil {
		t.Fatal(err)
	}
	svcs := tr.Services()
	if len(svcs) != 2 || svcs[0] != "svcA" || svcs[1] != "svcB" {
		t.Fatalf("Services = %v", svcs)
	}

	mixed := []*Span{
		span("t1", "a", "", "s", "n", KindServer, 0, 10, false),
		span("t2", "b", "", "s", "n", KindServer, 0, 10, false),
		span("t1", "c", "a", "s", "n", KindClient, 1, 9, false),
	}
	groups := GroupByTraceID(mixed)
	if len(groups) != 2 || len(groups["t1"]) != 2 || len(groups["t2"]) != 1 {
		t.Fatalf("GroupByTraceID = %v", groups)
	}
}

func TestAssembleAll(t *testing.T) {
	mixed := []*Span{
		span("t1", "a", "", "s", "n", KindServer, 0, 10, false),
		span("t2", "x", "", "s", "n", KindServer, 0, 10, false),
		span("t2", "x", "", "s", "n", KindServer, 5, 15, false), // dup → skip t2
	}
	traces, skipped := AssembleAll(mixed)
	if len(traces) != 1 || skipped != 1 {
		t.Fatalf("AssembleAll = %d traces, %d skipped", len(traces), skipped)
	}
	if traces[0].TraceID != "t1" {
		t.Fatalf("kept trace = %q", traces[0].TraceID)
	}
}

func TestOpKey(t *testing.T) {
	a := span("t", "1", "", "svc", "op", KindClient, 0, 1, false)
	b := span("t", "2", "", "svc", "op", KindClient, 5, 6, true)
	c := span("t", "3", "", "svc", "op", KindServer, 0, 1, false)
	if a.OpKey() != b.OpKey() {
		t.Error("same operation should share OpKey")
	}
	if a.OpKey() == c.OpKey() {
		t.Error("different kinds should not share OpKey")
	}
}

// randomTree generates a random well-formed trace for property tests.
func randomTree(r *xrand.Rand, n int) []*Span {
	spans := make([]*Span, n)
	spans[0] = span("t", "s0", "", "svc0", "op", KindServer, 0, 1_000_000, false)
	for i := 1; i < n; i++ {
		p := r.Intn(i)
		ps := spans[p]
		dur := ps.Duration() / 2
		if dur < 2 {
			dur = 2
		}
		start := ps.Start + int64(r.Intn(int(dur)))
		end := start + 1 + int64(r.Intn(int(dur)))
		if end > ps.End {
			end = ps.End
		}
		if end <= start {
			end = start + 1
		}
		spans[i] = span("t", fmt.Sprintf("s%d", i), ps.SpanID,
			fmt.Sprintf("svc%d", r.Intn(5)), "op", KindClient, start, end, r.Bernoulli(0.2))
	}
	return spans
}

// TestExclusiveDurationInvariants property-checks two invariants from the
// paper's definition: 0 <= exclusive <= duration, and the sum of exclusive
// durations of a parent and its children is at least the parent duration
// when children are fully nested (no overlap guarantee, so only the bound
// per span is universal).
func TestExclusiveDurationInvariants(t *testing.T) {
	r := xrand.New(99)
	check := func(seed uint16) bool {
		rr := r.Split(fmt.Sprint(seed))
		n := rr.IntRange(1, 40)
		tr, err := Assemble(randomTree(rr, n))
		if err != nil {
			return false
		}
		for i := range tr.Spans {
			ex := tr.ExclusiveDuration(i)
			if ex < 0 || ex > tr.Spans[i].Duration() {
				return false
			}
			if len(tr.Children(i)) == 0 && ex != tr.Spans[i].Duration() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDepthInvariant property-checks that every child is exactly one level
// deeper than its parent.
func TestDepthInvariant(t *testing.T) {
	r := xrand.New(123)
	check := func(seed uint16) bool {
		rr := r.Split(fmt.Sprint(seed))
		tr, err := Assemble(randomTree(rr, rr.IntRange(1, 60)))
		if err != nil {
			return false
		}
		for i := range tr.Spans {
			if p := tr.Parent(i); p >= 0 && tr.Depth(i) != tr.Depth(p)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAssemble1000Spans(b *testing.B) {
	r := xrand.New(7)
	spans := randomTree(r, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := make([]*Span, len(spans))
		for j, s := range spans {
			c := *s
			cp[j] = &c
		}
		if _, err := Assemble(cp); err != nil {
			b.Fatal(err)
		}
	}
}
