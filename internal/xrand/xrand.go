// Package xrand provides a deterministic, splittable pseudo-random number
// generator together with the distribution samplers used throughout the
// Sleuth reproduction: log-normal and Pareto service times, Bernoulli fault
// draws, Zipf workload mixes, and weighted choices.
//
// Determinism matters here: every experiment in the benchmark harness is
// seeded so that tables and figures can be regenerated exactly. The
// generator is splittable — Split derives an independent child stream from
// a string label — so that, for example, the fault injector and the latency
// sampler of a simulation never perturb each other's sequences even when
// code between them changes.
package xrand

import (
	"hash/fnv"
	"math"
)

// Rand is a xoshiro256** generator with helper samplers. It is not safe for
// concurrent use; derive per-goroutine streams with Split.
type Rand struct {
	s [4]uint64
	// origin preserves the seed material at construction so that Split is a
	// pure function of the generator's identity, not its current position.
	origin [4]uint64
	// spare holds a cached second output of the Box-Muller transform.
	spare    float64
	hasSpare bool
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding, per the xoshiro authors' recommendation.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Two generators with
// the same seed produce identical sequences.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// Guard against the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.origin = r.s
	return r
}

// Split derives an independent child generator from this generator's
// original identity and the given label. Splitting is a pure function of
// the parent seed material and the label: it does not consume randomness
// from the parent, so reordering Split calls never changes any stream.
func (r *Rand) Split(label string) *Rand {
	h := fnv.New64a()
	var b [8]byte
	for _, s := range r.origin {
		putUint64(b[:], s)
		_, _ = h.Write(b[:])
	}
	_, _ = h.Write([]byte(label))
	return New(h.Sum64())
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomises the order of n elements using the given swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal sample (Box-Muller with caching).
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Normal returns a normal sample with the given mean and standard deviation.
func (r *Rand) Normal(mean, std float64) float64 {
	return mean + std*r.NormFloat64()
}

// LogNormal returns a sample whose natural logarithm is normal with
// parameters mu and sigma. Span service times in the reproduction follow
// this family, matching the heavy-tailed production distributions the paper
// learned from Alibaba traces (Figure 3).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto returns a sample from a Pareto distribution with scale xm > 0 and
// shape alpha > 0. Used for extreme-tail stressor durations.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(u, 1/alpha)
}

// ExpFloat64 returns an exponential sample with the given rate lambda > 0.
func (r *Rand) ExpFloat64(lambda float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) / lambda
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Poisson returns a Poisson sample with mean lambda (Knuth's method for
// small lambda, normal approximation above 30 to stay O(1)).
func (r *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(r.Normal(lambda, math.Sqrt(lambda))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Negative weights are treated as zero. If all
// weights are zero it returns a uniform index.
func (r *Rand) WeightedChoice(weights []float64) int {
	if len(weights) == 0 {
		panic("xrand: WeightedChoice with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return r.Intn(len(weights))
	}
	target := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w > 0 {
			acc += w
		}
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf holds precomputed state for Zipf-distributed ranks in [0, n).
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func (r *Rand) NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1), s)
		cdf[i] = acc
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next returns the next Zipf-distributed rank.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
