package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("faults")
	// Consuming randomness from the parent must not change the child stream.
	parent2 := New(7)
	for i := 0; i < 100; i++ {
		parent2.Uint64()
	}
	c2 := parent2.Split("faults")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split stream depends on parent consumption at step %d", i)
		}
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	parent := New(7)
	a := parent.Split("a")
	b := parent.Split("b")
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("different split labels produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange out of range: %d", v)
		}
	}
	if v := r.IntRange(4, 4); v != 4 {
		t.Fatalf("IntRange(4,4) = %d", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	check := func(n uint8) bool {
		size := int(n%50) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("normal variance = %v, want ~4", variance)
	}
}

func TestLogNormalPositiveAndHeavyTailed(t *testing.T) {
	r := New(17)
	const n = 50000
	max, sum := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.LogNormal(0, 1.5)
		if v <= 0 {
			t.Fatalf("log-normal sample not positive: %v", v)
		}
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / n
	// Heavy tail: max should dwarf the mean by a large factor.
	if max/mean < 20 {
		t.Fatalf("log-normal tail too light: max/mean = %v", max/mean)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2, 1.5)
		if v < 2 {
			t.Fatalf("Pareto sample below scale: %v", v)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(23)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(29)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(31)
	for _, lambda := range []float64{0.5, 3, 50} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > lambda*0.05+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(37)
	weights := []float64{0, 1, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoiceAllZero(t *testing.T) {
	r := New(41)
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		seen[r.WeightedChoice([]float64{0, 0, 0})] = true
	}
	if len(seen) < 2 {
		t.Fatal("all-zero weights did not fall back to uniform choice")
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(43)
	z := r.NewZipf(100, 1.2)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50]*5 {
		t.Fatalf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
}

func TestShuffle(t *testing.T) {
	r := New(47)
	v := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	seen := make([]bool, 10)
	for _, x := range v {
		seen[x] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("element %d lost in shuffle", i)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkLogNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.LogNormal(0, 1.5)
	}
}
