// Package store implements the distributed trace storage engine of §4 at
// single-process scale: append-oriented span storage with trace/service/
// time indexes, predicate queries with parallel scans, derived per-
// operation statistics (the computations the paper offloads to SQL
// operators — exclusive durations, medians, percentiles), and JSONL
// persistence.
//
// The store is sharded by trace-ID hash (default GOMAXPROCS shards,
// SLEUTH_STORE_SHARDS overrides): writers touching different traces lock
// different shards, predicate scans run one goroutine per shard, and a
// Limit query stops each shard's scan as soon as it has enough matches —
// the abnormal-trace fetch stays flat as the corpus grows instead of
// snapshotting the whole corpus under one big lock.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"github.com/sleuth-rca/sleuth/internal/stats"
	"github.com/sleuth-rca/sleuth/internal/trace"
)

// shard is one lock domain of the store: the traces whose ID hashes here,
// with their own insertion order and service index.
type shard struct {
	mu sync.RWMutex

	// spans grouped by trace ID, insertion-ordered trace list.
	byTrace map[string][]*trace.Span
	order   []string

	// service index: service name → trace IDs containing it.
	byService map[string]map[string]struct{}

	spanCount int
}

func newShard() *shard {
	return &shard{
		byTrace:   make(map[string][]*trace.Span),
		byService: make(map[string]map[string]struct{}),
	}
}

// Store is a thread-safe sharded trace store.
type Store struct {
	shards []*shard
}

// DefaultShards returns the shard count used by New: SLEUTH_STORE_SHARDS
// when set to a positive integer, GOMAXPROCS otherwise.
func DefaultShards() int {
	if raw := os.Getenv("SLEUTH_STORE_SHARDS"); raw != "" {
		if n, err := strconv.Atoi(raw); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// New creates an empty Store with DefaultShards shards.
func New() *Store { return NewSharded(DefaultShards()) }

// NewSharded creates an empty Store with n shards (n < 1 is treated as 1).
func NewSharded(n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{shards: make([]*shard, n)}
	for i := range s.shards {
		s.shards[i] = newShard()
	}
	return s
}

// Shards returns the number of shards.
func (s *Store) Shards() int { return len(s.shards) }

// shardIndex hashes a trace ID onto a shard with FNV-1a.
func shardIndex(id string, n int) int {
	if n == 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

func (s *Store) shardFor(id string) *shard { return s.shards[shardIndex(id, len(s.shards))] }

// add ingests spans into one shard. Every span must hash to this shard.
func (sh *shard) add(spans []*trace.Span) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, sp := range spans {
		if _, ok := sh.byTrace[sp.TraceID]; !ok {
			sh.order = append(sh.order, sp.TraceID)
		}
		sh.byTrace[sp.TraceID] = append(sh.byTrace[sp.TraceID], sp)
		set, ok := sh.byService[sp.Service]
		if !ok {
			set = make(map[string]struct{})
			sh.byService[sp.Service] = set
		}
		set[sp.TraceID] = struct{}{}
		sh.spanCount++
	}
}

// AddSpans ingests spans (any mix of traces, any order).
func (s *Store) AddSpans(spans []*trace.Span) {
	if len(spans) == 0 {
		return
	}
	n := len(s.shards)
	if n == 1 {
		s.shards[0].add(spans)
		return
	}
	// Fast path: batches carrying a single trace (the common shape from the
	// ingest writer) land on one shard with one lock acquisition.
	first := shardIndex(spans[0].TraceID, n)
	uniform := true
	for _, sp := range spans[1:] {
		if shardIndex(sp.TraceID, n) != first {
			uniform = false
			break
		}
	}
	if uniform {
		s.shards[first].add(spans)
		return
	}
	buckets := make([][]*trace.Span, n)
	for _, sp := range spans {
		i := shardIndex(sp.TraceID, n)
		buckets[i] = append(buckets[i], sp)
	}
	for i, b := range buckets {
		if len(b) > 0 {
			s.shards[i].add(b)
		}
	}
}

// AddTrace ingests an assembled trace.
func (s *Store) AddTrace(tr *trace.Trace) { s.AddSpans(tr.Spans) }

// SpanCount returns the number of stored spans.
func (s *Store) SpanCount() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		total += sh.spanCount
		sh.mu.RUnlock()
	}
	return total
}

// TraceCount returns the number of stored traces.
func (s *Store) TraceCount() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		total += len(sh.order)
		sh.mu.RUnlock()
	}
	return total
}

// Query filters traces. Zero values mean "no constraint".
type Query struct {
	// TraceIDs restricts to specific traces (duplicates are ignored).
	TraceIDs []string
	// Service restricts to traces touching the service (index-accelerated).
	Service string
	// MinStart/MaxStart bound the root span start time (µs).
	MinStart, MaxStart int64
	// OnlyErrors keeps traces containing at least one error span.
	OnlyErrors bool
	// MinRootDuration keeps traces at least this slow end-to-end (µs).
	MinRootDuration int64
	// Limit caps the number of returned traces (0 = unlimited).
	Limit int
}

// group copies the span list of one trace out of the shard under a short
// read lock, so assembly (which sorts the slice in place) never runs while
// the lock is held and never mutates the stored slice.
func (sh *shard) group(id string) []*trace.Span {
	sh.mu.RLock()
	spans := sh.byTrace[id]
	var cp []*trace.Span
	if len(spans) > 0 {
		cp = make([]*trace.Span, len(spans))
		copy(cp, spans)
	}
	sh.mu.RUnlock()
	return cp
}

// candidates snapshots the shard's candidate trace IDs for a query: the
// service index when the query names a service, insertion order otherwise.
// Only the ID list is copied — span groups are fetched one at a time during
// the scan, so a Limit query copies only as many groups as it inspects.
func (sh *shard) candidates(q Query) []string {
	sh.mu.RLock()
	var ids []string
	if q.Service != "" {
		set := sh.byService[q.Service]
		if len(set) > 0 {
			ids = make([]string, 0, len(set))
			for id := range set {
				ids = append(ids, id)
			}
		}
	} else if len(sh.order) > 0 {
		ids = append([]string(nil), sh.order...)
	}
	sh.mu.RUnlock()
	if q.Service != "" {
		sort.Strings(ids)
	}
	return ids
}

// scan assembles and filters this shard's candidates, stopping as soon as
// q.Limit matches are found.
func (sh *shard) scan(q Query) []*trace.Trace {
	ids := sh.candidates(q)
	var out []*trace.Trace
	for _, id := range ids {
		group := sh.group(id)
		if len(group) == 0 {
			continue
		}
		tr, err := trace.Assemble(group)
		if err != nil {
			continue
		}
		if !matches(tr, q) {
			continue
		}
		out = append(out, tr)
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}

// Traces runs a query, assembling matching traces. Invalid span groups
// (failed assembly) are skipped. Shards are scanned in parallel; each
// shard's scan exits early once it alone could satisfy q.Limit, so small
// limits touch a small prefix of the corpus instead of snapshotting it.
func (s *Store) Traces(q Query) []*trace.Trace {
	if len(q.TraceIDs) > 0 {
		return s.tracesByID(q)
	}
	if len(s.shards) == 1 {
		return s.shards[0].scan(q)
	}
	results := make([][]*trace.Trace, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			results[i] = sh.scan(q)
		}(i, sh)
	}
	wg.Wait()
	var out []*trace.Trace
	for _, r := range results {
		out = append(out, r...)
		if q.Limit > 0 && len(out) >= q.Limit {
			out = out[:q.Limit]
			break
		}
	}
	return out
}

// tracesByID serves an explicit-ID query in request order, skipping
// duplicate IDs so a repeated ID cannot return the same trace twice.
func (s *Store) tracesByID(q Query) []*trace.Trace {
	seen := make(map[string]struct{}, len(q.TraceIDs))
	var out []*trace.Trace
	for _, id := range q.TraceIDs {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		group := s.shardFor(id).group(id)
		if len(group) == 0 {
			continue
		}
		tr, err := trace.Assemble(group)
		if err != nil {
			continue
		}
		if !matches(tr, q) {
			continue
		}
		out = append(out, tr)
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}

func matches(tr *trace.Trace, q Query) bool {
	if len(tr.Roots()) == 0 {
		return false
	}
	root := tr.Spans[tr.Roots()[0]]
	if q.MinStart != 0 && root.Start < q.MinStart {
		return false
	}
	if q.MaxStart != 0 && root.Start > q.MaxStart {
		return false
	}
	if q.OnlyErrors && !tr.HasError() {
		return false
	}
	if q.MinRootDuration != 0 && tr.RootDuration() < q.MinRootDuration {
		return false
	}
	return true
}

// OpSummary is a derived per-operation statistics row (the "SQL-offloaded"
// aggregate the RCA pipeline consumes for normal states and thresholds).
type OpSummary struct {
	OpKey  string
	Count  int
	Median float64
	P95    float64
	P99    float64
	// MedianExclusive is the median exclusive duration.
	MedianExclusive float64
	ErrorRate       float64
}

// OpSummaries computes per-operation aggregates over the whole store.
func (s *Store) OpSummaries() []OpSummary {
	traces := s.Traces(Query{})
	durs := map[string][]float64{}
	excl := map[string][]float64{}
	errs := map[string]int{}
	for _, tr := range traces {
		for i, sp := range tr.Spans {
			k := sp.OpKey()
			durs[k] = append(durs[k], float64(sp.Duration()))
			excl[k] = append(excl[k], float64(tr.ExclusiveDuration(i)))
			if sp.Error {
				errs[k]++
			}
		}
	}
	keys := make([]string, 0, len(durs))
	for k := range durs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]OpSummary, 0, len(keys))
	for _, k := range keys {
		ds := durs[k]
		out = append(out, OpSummary{
			OpKey:           k,
			Count:           len(ds),
			Median:          stats.Percentile(ds, 50),
			P95:             stats.Percentile(ds, 95),
			P99:             stats.Percentile(ds, 99),
			MedianExclusive: stats.Percentile(excl[k], 50),
			ErrorRate:       float64(errs[k]) / float64(len(ds)),
		})
	}
	return out
}

// SaveJSONL writes every span as one JSON line, shard by shard in each
// shard's insertion order.
func (s *Store) SaveJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, id := range sh.order {
			for _, sp := range sh.byTrace[id] {
				if err := enc.Encode(sp); err != nil {
					sh.mu.RUnlock()
					return fmt.Errorf("store: encoding span: %w", err)
				}
			}
		}
		sh.mu.RUnlock()
	}
	return bw.Flush()
}

// LoadJSONL ingests spans from a JSONL stream. Lines of any length are
// accepted; malformed lines are skipped and counted (mirroring the
// collector's skip-and-count policy) rather than aborting the load. It
// returns the number of skipped lines; the error is non-nil only for I/O
// failures on the underlying reader.
func (s *Store) LoadJSONL(r io.Reader) (skipped int, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var batch []*trace.Span
	for {
		line, rerr := br.ReadBytes('\n')
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var sp trace.Span
			if jerr := json.Unmarshal(trimmed, &sp); jerr != nil {
				skipped++
			} else {
				cp := sp
				batch = append(batch, &cp)
				if len(batch) >= 4096 {
					s.AddSpans(batch)
					batch = batch[:0]
				}
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return skipped, rerr
		}
	}
	if len(batch) > 0 {
		s.AddSpans(batch)
	}
	return skipped, nil
}

// SaveFile writes the store to a JSONL file.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.SaveJSONL(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile reads a JSONL file into the store, returning the number of
// skipped (malformed) lines.
func (s *Store) LoadFile(path string) (skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return s.LoadJSONL(f)
}

// Services returns the sorted service names present in the store.
func (s *Store) Services() []string {
	set := make(map[string]struct{})
	for _, sh := range s.shards {
		sh.mu.RLock()
		for svc := range sh.byService {
			set[svc] = struct{}{}
		}
		sh.mu.RUnlock()
	}
	out := make([]string, 0, len(set))
	for svc := range set {
		out = append(out, svc)
	}
	sort.Strings(out)
	return out
}
