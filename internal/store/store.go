// Package store implements the distributed trace storage engine of §4 at
// single-process scale: append-oriented span storage with trace/service/
// time indexes, predicate queries with parallel scans, derived per-
// operation statistics (the computations the paper offloads to SQL
// operators — exclusive durations, medians, percentiles), and JSONL
// persistence.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"github.com/sleuth-rca/sleuth/internal/stats"
	"github.com/sleuth-rca/sleuth/internal/trace"
)

// Store is a thread-safe trace store.
type Store struct {
	mu sync.RWMutex

	// spans grouped by trace ID, insertion-ordered trace list.
	byTrace map[string][]*trace.Span
	order   []string

	// service index: service name → trace IDs containing it.
	byService map[string]map[string]struct{}

	spanCount int
}

// New creates an empty Store.
func New() *Store {
	return &Store{
		byTrace:   make(map[string][]*trace.Span),
		byService: make(map[string]map[string]struct{}),
	}
}

// AddSpans ingests spans (any mix of traces, any order).
func (s *Store) AddSpans(spans []*trace.Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sp := range spans {
		if _, ok := s.byTrace[sp.TraceID]; !ok {
			s.order = append(s.order, sp.TraceID)
		}
		s.byTrace[sp.TraceID] = append(s.byTrace[sp.TraceID], sp)
		set, ok := s.byService[sp.Service]
		if !ok {
			set = make(map[string]struct{})
			s.byService[sp.Service] = set
		}
		set[sp.TraceID] = struct{}{}
		s.spanCount++
	}
}

// AddTrace ingests an assembled trace.
func (s *Store) AddTrace(tr *trace.Trace) { s.AddSpans(tr.Spans) }

// SpanCount returns the number of stored spans.
func (s *Store) SpanCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.spanCount
}

// TraceCount returns the number of stored traces.
func (s *Store) TraceCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.order)
}

// Query filters traces. Zero values mean "no constraint".
type Query struct {
	// TraceIDs restricts to specific traces.
	TraceIDs []string
	// Service restricts to traces touching the service (index-accelerated).
	Service string
	// MinStart/MaxStart bound the root span start time (µs).
	MinStart, MaxStart int64
	// OnlyErrors keeps traces containing at least one error span.
	OnlyErrors bool
	// MinRootDuration keeps traces at least this slow end-to-end (µs).
	MinRootDuration int64
	// Limit caps the number of returned traces (0 = unlimited).
	Limit int
}

// Traces runs a query, assembling matching traces. Invalid span groups
// (failed assembly) are skipped.
func (s *Store) Traces(q Query) []*trace.Trace {
	s.mu.RLock()
	// Snapshot candidate IDs under the lock.
	var ids []string
	switch {
	case len(q.TraceIDs) > 0:
		ids = append(ids, q.TraceIDs...)
	case q.Service != "":
		for id := range s.byService[q.Service] {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	default:
		ids = append(ids, s.order...)
	}
	groups := make([][]*trace.Span, 0, len(ids))
	for _, id := range ids {
		if spans, ok := s.byTrace[id]; ok {
			groups = append(groups, append([]*trace.Span(nil), spans...))
		}
	}
	s.mu.RUnlock()

	var out []*trace.Trace
	for _, group := range groups {
		tr, err := trace.Assemble(group)
		if err != nil {
			continue
		}
		if !matches(tr, q) {
			continue
		}
		out = append(out, tr)
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}

func matches(tr *trace.Trace, q Query) bool {
	if len(tr.Roots()) == 0 {
		return false
	}
	root := tr.Spans[tr.Roots()[0]]
	if q.MinStart != 0 && root.Start < q.MinStart {
		return false
	}
	if q.MaxStart != 0 && root.Start > q.MaxStart {
		return false
	}
	if q.OnlyErrors && !tr.HasError() {
		return false
	}
	if q.MinRootDuration != 0 && tr.RootDuration() < q.MinRootDuration {
		return false
	}
	return true
}

// OpSummary is a derived per-operation statistics row (the "SQL-offloaded"
// aggregate the RCA pipeline consumes for normal states and thresholds).
type OpSummary struct {
	OpKey  string
	Count  int
	Median float64
	P95    float64
	P99    float64
	// MedianExclusive is the median exclusive duration.
	MedianExclusive float64
	ErrorRate       float64
}

// OpSummaries computes per-operation aggregates over the whole store.
func (s *Store) OpSummaries() []OpSummary {
	traces := s.Traces(Query{})
	durs := map[string][]float64{}
	excl := map[string][]float64{}
	errs := map[string]int{}
	for _, tr := range traces {
		for i, sp := range tr.Spans {
			k := sp.OpKey()
			durs[k] = append(durs[k], float64(sp.Duration()))
			excl[k] = append(excl[k], float64(tr.ExclusiveDuration(i)))
			if sp.Error {
				errs[k]++
			}
		}
	}
	keys := make([]string, 0, len(durs))
	for k := range durs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]OpSummary, 0, len(keys))
	for _, k := range keys {
		ds := durs[k]
		out = append(out, OpSummary{
			OpKey:           k,
			Count:           len(ds),
			Median:          stats.Percentile(ds, 50),
			P95:             stats.Percentile(ds, 95),
			P99:             stats.Percentile(ds, 99),
			MedianExclusive: stats.Percentile(excl[k], 50),
			ErrorRate:       float64(errs[k]) / float64(len(ds)),
		})
	}
	return out
}

// SaveJSONL writes every span as one JSON line.
func (s *Store) SaveJSONL(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, id := range s.order {
		for _, sp := range s.byTrace[id] {
			if err := enc.Encode(sp); err != nil {
				return fmt.Errorf("store: encoding span: %w", err)
			}
		}
	}
	return bw.Flush()
}

// LoadJSONL ingests spans from a JSONL stream.
func (s *Store) LoadJSONL(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var batch []*trace.Span
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var sp trace.Span
		if err := json.Unmarshal(line, &sp); err != nil {
			return fmt.Errorf("store: parsing span line: %w", err)
		}
		cp := sp
		batch = append(batch, &cp)
		if len(batch) >= 4096 {
			s.AddSpans(batch)
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		s.AddSpans(batch)
	}
	return sc.Err()
}

// SaveFile writes the store to a JSONL file.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.SaveJSONL(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile reads a JSONL file into the store.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.LoadJSONL(f)
}

// Services returns the sorted service names present in the store.
func (s *Store) Services() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byService))
	for svc := range s.byService {
		out = append(out, svc)
	}
	sort.Strings(out)
	return out
}
