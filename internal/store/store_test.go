package store

import (
	"bytes"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/sleuth-rca/sleuth/internal/chaos"
	"github.com/sleuth-rca/sleuth/internal/sim"
	"github.com/sleuth-rca/sleuth/internal/synth"
	"github.com/sleuth-rca/sleuth/internal/trace"
)

func populated(t *testing.T, n int) (*Store, *sim.Simulator) {
	t.Helper()
	app := synth.Synthetic(16, 1)
	s := sim.New(app, sim.DefaultOptions(1))
	results, err := s.Run(0, n)
	if err != nil {
		t.Fatal(err)
	}
	// Multiple shards even on one-core test boxes, so the sharded paths
	// (partitioned adds, parallel scans, limit merge) are always exercised.
	st := NewSharded(4)
	for _, r := range results {
		st.AddTrace(r.Trace)
	}
	return st, s
}

func TestAddAndCounts(t *testing.T) {
	st, _ := populated(t, 30)
	if st.TraceCount() != 30 {
		t.Fatalf("TraceCount = %d", st.TraceCount())
	}
	if st.SpanCount() < 60 {
		t.Fatalf("SpanCount = %d", st.SpanCount())
	}
	if len(st.Services()) == 0 {
		t.Fatal("no services indexed")
	}
}

func TestQueryAll(t *testing.T) {
	st, _ := populated(t, 25)
	traces := st.Traces(Query{})
	if len(traces) != 25 {
		t.Fatalf("query-all returned %d", len(traces))
	}
}

func TestQueryLimit(t *testing.T) {
	st, _ := populated(t, 25)
	if got := len(st.Traces(Query{Limit: 7})); got != 7 {
		t.Fatalf("limit query returned %d", got)
	}
}

func TestQueryByTraceID(t *testing.T) {
	st, _ := populated(t, 10)
	all := st.Traces(Query{})
	got := st.Traces(Query{TraceIDs: []string{all[3].TraceID}})
	if len(got) != 1 || got[0].TraceID != all[3].TraceID {
		t.Fatalf("by-ID query = %v", got)
	}
	if got := st.Traces(Query{TraceIDs: []string{"missing"}}); len(got) != 0 {
		t.Fatal("missing ID returned traces")
	}
}

func TestQueryByService(t *testing.T) {
	st, _ := populated(t, 30)
	svc := st.Services()[0]
	got := st.Traces(Query{Service: svc})
	if len(got) == 0 {
		t.Fatal("service query empty")
	}
	for _, tr := range got {
		found := false
		for _, s := range tr.Services() {
			if s == svc {
				found = true
			}
		}
		if !found {
			t.Fatalf("trace %s lacks service %s", tr.TraceID, svc)
		}
	}
}

func TestQueryTimeRange(t *testing.T) {
	st, _ := populated(t, 20)
	all := st.Traces(Query{})
	mid := all[10].Spans[all[10].Roots()[0]].Start
	early := st.Traces(Query{MaxStart: mid})
	late := st.Traces(Query{MinStart: mid + 1})
	if len(early)+len(late) != 20 {
		t.Fatalf("time partition: %d + %d != 20", len(early), len(late))
	}
}

func TestQueryErrorsAndSlow(t *testing.T) {
	app := synth.Synthetic(16, 2)
	s := sim.New(app, sim.DefaultOptions(2))
	svc := app.ServiceAtCallDepth(1)
	plan := chaos.NewPlan(app, chaos.Fault{
		Type: chaos.FaultCPU, Level: chaos.LevelContainer,
		Target: app.Services[svc].Name, SlowFactor: 40, ErrorProb: 0.5,
	})
	results, err := s.RunWithInjector(0, 40, chaos.NewInjector(app, plan))
	if err != nil {
		t.Fatal(err)
	}
	st := New()
	for _, r := range results {
		st.AddTrace(r.Trace)
	}
	errTraces := st.Traces(Query{OnlyErrors: true})
	for _, tr := range errTraces {
		if !tr.HasError() {
			t.Fatal("error query returned clean trace")
		}
	}
	slow := st.Traces(Query{MinRootDuration: 100_000})
	for _, tr := range slow {
		if tr.RootDuration() < 100_000 {
			t.Fatal("slow query returned fast trace")
		}
	}
}

func TestOpSummaries(t *testing.T) {
	st, _ := populated(t, 40)
	sums := st.OpSummaries()
	if len(sums) == 0 {
		t.Fatal("no op summaries")
	}
	for _, s := range sums {
		if s.Count <= 0 || s.Median <= 0 {
			t.Fatalf("degenerate summary %+v", s)
		}
		if s.P95 < s.Median || s.P99 < s.P95 {
			t.Fatalf("percentiles not ordered: %+v", s)
		}
		if s.MedianExclusive > s.Median {
			t.Fatalf("exclusive median exceeds duration median: %+v", s)
		}
		if s.ErrorRate < 0 || s.ErrorRate > 1 {
			t.Fatalf("error rate out of range: %+v", s)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	st, _ := populated(t, 15)
	var buf bytes.Buffer
	if err := st.SaveJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := New()
	skipped, err := st2.LoadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("clean round trip skipped %d lines", skipped)
	}
	if st2.SpanCount() != st.SpanCount() || st2.TraceCount() != st.TraceCount() {
		t.Fatalf("round trip: %d/%d vs %d/%d spans/traces",
			st2.SpanCount(), st2.TraceCount(), st.SpanCount(), st.TraceCount())
	}
}

func TestFileRoundTrip(t *testing.T) {
	st, _ := populated(t, 10)
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	st2 := New()
	if _, err := st2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if st2.TraceCount() != 10 {
		t.Fatalf("file round trip lost traces: %d", st2.TraceCount())
	}
}

// TestLoadJSONLSkipsAndCounts: malformed lines must be skipped and counted
// — not abort the whole load — mirroring the collector's per-span
// skip-and-count policy.
func TestLoadJSONLSkipsAndCounts(t *testing.T) {
	input := `{"traceId":"t1","spanId":"a","service":"s","name":"op","kind":"server","start":1,"end":5}
{broken
not json at all
{"traceId":"t2","spanId":"b","service":"s","name":"op","kind":"server","start":2,"end":6}
`
	st := New()
	skipped, err := st.LoadJSONL(bytes.NewBufferString(input))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}
	if st.SpanCount() != 2 || st.TraceCount() != 2 {
		t.Fatalf("loaded %d spans / %d traces, want 2/2", st.SpanCount(), st.TraceCount())
	}
}

// TestLoadJSONLLongLine: a span line over the old 1 MiB scanner cap must
// load instead of killing the stream.
func TestLoadJSONLLongLine(t *testing.T) {
	big := strings.Repeat("x", 2<<20) // 2 MiB attribute value
	line := `{"traceId":"t1","spanId":"a","service":"s","name":"op","kind":"server","start":1,"end":5,"attrs":{"blob":"` + big + `"}}`
	st := New()
	skipped, err := st.LoadJSONL(bytes.NewBufferString(line + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || st.SpanCount() != 1 {
		t.Fatalf("long line: skipped=%d spans=%d, want 0/1", skipped, st.SpanCount())
	}
	got := st.Traces(Query{})
	if len(got) != 1 || got[0].Spans[0].Attrs["blob"] != big {
		t.Fatal("long attribute did not round-trip")
	}
}

// TestQueryDuplicateTraceIDs: a repeated ID in Query.TraceIDs must not
// return the same trace twice.
func TestQueryDuplicateTraceIDs(t *testing.T) {
	st, _ := populated(t, 10)
	all := st.Traces(Query{})
	id := all[2].TraceID
	got := st.Traces(Query{TraceIDs: []string{id, id, id}})
	if len(got) != 1 || got[0].TraceID != id {
		t.Fatalf("duplicate-ID query returned %d traces", len(got))
	}
	// Mixed duplicates preserve request order of the distinct IDs.
	got = st.Traces(Query{TraceIDs: []string{all[5].TraceID, id, all[5].TraceID}})
	if len(got) != 2 || got[0].TraceID != all[5].TraceID || got[1].TraceID != id {
		t.Fatalf("mixed duplicate query = %v", traceIDs(got))
	}
}

func traceIDs(trs []*trace.Trace) []string {
	out := make([]string, len(trs))
	for i, tr := range trs {
		out[i] = tr.TraceID
	}
	return out
}

// TestShardEquivalence: every query must return the same trace set on a
// single-shard store and a many-shard store (order may differ across shard
// layouts; contents may not).
func TestShardEquivalence(t *testing.T) {
	app := synth.Synthetic(16, 3)
	s := sim.New(app, sim.DefaultOptions(3))
	results, err := s.Run(0, 60)
	if err != nil {
		t.Fatal(err)
	}
	single, sharded := NewSharded(1), NewSharded(8)
	for _, r := range results {
		single.AddTrace(r.Trace)
		sharded.AddTrace(r.Trace)
	}
	if single.SpanCount() != sharded.SpanCount() || single.TraceCount() != sharded.TraceCount() {
		t.Fatalf("counts diverge: %d/%d vs %d/%d",
			single.SpanCount(), single.TraceCount(), sharded.SpanCount(), sharded.TraceCount())
	}
	svc := single.Services()[0]
	all := single.Traces(Query{})
	mid := all[30].Spans[all[30].Roots()[0]].Start
	queries := []Query{
		{},
		{Service: svc},
		{OnlyErrors: true},
		{MinRootDuration: 50_000},
		{MinStart: mid},
		{MaxStart: mid},
		{TraceIDs: traceIDs(all[:7])},
	}
	for qi, q := range queries {
		a, b := traceIDs(single.Traces(q)), traceIDs(sharded.Traces(q))
		sort.Strings(a)
		sort.Strings(b)
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Fatalf("query %d: single=%v sharded=%v", qi, a, b)
		}
	}
	// Limit queries return exactly Limit traces on both layouts.
	for _, limit := range []int{1, 5, 59} {
		if got := len(sharded.Traces(Query{Limit: limit})); got != limit {
			t.Fatalf("sharded Limit=%d returned %d", limit, got)
		}
	}
	if strings.Join(single.Services(), ",") != strings.Join(sharded.Services(), ",") {
		t.Fatal("service sets diverge")
	}
}

func TestConcurrentAccess(t *testing.T) {
	st, s := populated(t, 10)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := s.SimulateRequest(100+g*10+i, nil)
				if err != nil {
					t.Error(err)
					return
				}
				st.AddTrace(res.Trace)
				_ = st.Traces(Query{Limit: 5})
				_ = st.SpanCount()
			}
		}(g)
	}
	wg.Wait()
	if st.TraceCount() != 50 {
		t.Fatalf("TraceCount = %d after concurrent adds", st.TraceCount())
	}
}
