package store

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"

	"github.com/sleuth-rca/sleuth/internal/chaos"
	"github.com/sleuth-rca/sleuth/internal/sim"
	"github.com/sleuth-rca/sleuth/internal/synth"
)

func populated(t *testing.T, n int) (*Store, *sim.Simulator) {
	t.Helper()
	app := synth.Synthetic(16, 1)
	s := sim.New(app, sim.DefaultOptions(1))
	results, err := s.Run(0, n)
	if err != nil {
		t.Fatal(err)
	}
	st := New()
	for _, r := range results {
		st.AddTrace(r.Trace)
	}
	return st, s
}

func TestAddAndCounts(t *testing.T) {
	st, _ := populated(t, 30)
	if st.TraceCount() != 30 {
		t.Fatalf("TraceCount = %d", st.TraceCount())
	}
	if st.SpanCount() < 60 {
		t.Fatalf("SpanCount = %d", st.SpanCount())
	}
	if len(st.Services()) == 0 {
		t.Fatal("no services indexed")
	}
}

func TestQueryAll(t *testing.T) {
	st, _ := populated(t, 25)
	traces := st.Traces(Query{})
	if len(traces) != 25 {
		t.Fatalf("query-all returned %d", len(traces))
	}
}

func TestQueryLimit(t *testing.T) {
	st, _ := populated(t, 25)
	if got := len(st.Traces(Query{Limit: 7})); got != 7 {
		t.Fatalf("limit query returned %d", got)
	}
}

func TestQueryByTraceID(t *testing.T) {
	st, _ := populated(t, 10)
	all := st.Traces(Query{})
	got := st.Traces(Query{TraceIDs: []string{all[3].TraceID}})
	if len(got) != 1 || got[0].TraceID != all[3].TraceID {
		t.Fatalf("by-ID query = %v", got)
	}
	if got := st.Traces(Query{TraceIDs: []string{"missing"}}); len(got) != 0 {
		t.Fatal("missing ID returned traces")
	}
}

func TestQueryByService(t *testing.T) {
	st, _ := populated(t, 30)
	svc := st.Services()[0]
	got := st.Traces(Query{Service: svc})
	if len(got) == 0 {
		t.Fatal("service query empty")
	}
	for _, tr := range got {
		found := false
		for _, s := range tr.Services() {
			if s == svc {
				found = true
			}
		}
		if !found {
			t.Fatalf("trace %s lacks service %s", tr.TraceID, svc)
		}
	}
}

func TestQueryTimeRange(t *testing.T) {
	st, _ := populated(t, 20)
	all := st.Traces(Query{})
	mid := all[10].Spans[all[10].Roots()[0]].Start
	early := st.Traces(Query{MaxStart: mid})
	late := st.Traces(Query{MinStart: mid + 1})
	if len(early)+len(late) != 20 {
		t.Fatalf("time partition: %d + %d != 20", len(early), len(late))
	}
}

func TestQueryErrorsAndSlow(t *testing.T) {
	app := synth.Synthetic(16, 2)
	s := sim.New(app, sim.DefaultOptions(2))
	svc := app.ServiceAtCallDepth(1)
	plan := chaos.NewPlan(app, chaos.Fault{
		Type: chaos.FaultCPU, Level: chaos.LevelContainer,
		Target: app.Services[svc].Name, SlowFactor: 40, ErrorProb: 0.5,
	})
	results, err := s.RunWithInjector(0, 40, chaos.NewInjector(app, plan))
	if err != nil {
		t.Fatal(err)
	}
	st := New()
	for _, r := range results {
		st.AddTrace(r.Trace)
	}
	errTraces := st.Traces(Query{OnlyErrors: true})
	for _, tr := range errTraces {
		if !tr.HasError() {
			t.Fatal("error query returned clean trace")
		}
	}
	slow := st.Traces(Query{MinRootDuration: 100_000})
	for _, tr := range slow {
		if tr.RootDuration() < 100_000 {
			t.Fatal("slow query returned fast trace")
		}
	}
}

func TestOpSummaries(t *testing.T) {
	st, _ := populated(t, 40)
	sums := st.OpSummaries()
	if len(sums) == 0 {
		t.Fatal("no op summaries")
	}
	for _, s := range sums {
		if s.Count <= 0 || s.Median <= 0 {
			t.Fatalf("degenerate summary %+v", s)
		}
		if s.P95 < s.Median || s.P99 < s.P95 {
			t.Fatalf("percentiles not ordered: %+v", s)
		}
		if s.MedianExclusive > s.Median {
			t.Fatalf("exclusive median exceeds duration median: %+v", s)
		}
		if s.ErrorRate < 0 || s.ErrorRate > 1 {
			t.Fatalf("error rate out of range: %+v", s)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	st, _ := populated(t, 15)
	var buf bytes.Buffer
	if err := st.SaveJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := New()
	if err := st2.LoadJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if st2.SpanCount() != st.SpanCount() || st2.TraceCount() != st.TraceCount() {
		t.Fatalf("round trip: %d/%d vs %d/%d spans/traces",
			st2.SpanCount(), st2.TraceCount(), st.SpanCount(), st.TraceCount())
	}
}

func TestFileRoundTrip(t *testing.T) {
	st, _ := populated(t, 10)
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	st2 := New()
	if err := st2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if st2.TraceCount() != 10 {
		t.Fatalf("file round trip lost traces: %d", st2.TraceCount())
	}
}

func TestLoadJSONLRejectsGarbage(t *testing.T) {
	st := New()
	if err := st.LoadJSONL(bytes.NewBufferString("{broken\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	st, s := populated(t, 10)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := s.SimulateRequest(100+g*10+i, nil)
				if err != nil {
					t.Error(err)
					return
				}
				st.AddTrace(res.Trace)
				_ = st.Traces(Query{Limit: 5})
				_ = st.SpanCount()
			}
		}(g)
	}
	wg.Wait()
	if st.TraceCount() != 50 {
		t.Fatalf("TraceCount = %d after concurrent adds", st.TraceCount())
	}
}
