package synth

import "fmt"

// Preset applications matching the paper's Table 1. Span counts and depths
// are computed from the generated flows by App.Spec; the presets tune
// generator parameters so the resulting specifications land on the paper's
// rows (services, RPCs, max spans ≈ 2·RPCs, depth, out-degree).

// Synthetic returns the Synthetic-N benchmark for n ∈ {16, 64, 256, 1024}
// (other sizes are allowed; the four paper sizes have tuned depths).
func Synthetic(n int, seed uint64) *App {
	depth := syntheticDepth(n)
	return Generate(Params{
		Name:         fmt.Sprintf("synthetic-%d", n),
		NumServices:  maxInt(1, n/4),
		NumRPCs:      n,
		MaxCallDepth: depth,
		NumFlows:     4,
		Seed:         seed,
	})
}

// syntheticDepth reproduces the Table-1 max span depths: 3, 7, 15, 15 for
// n = 16, 64, 256, 1024 (span depth = 2·callDepth - 1).
func syntheticDepth(n int) int {
	switch {
	case n <= 16:
		return 2
	case n <= 64:
		return 4
	default:
		return 8
	}
}

// SockShopLike returns an application mirroring the SockShop demo's shape:
// 11 services, 58 RPCs, largest flow of 29 calls (57 spans) and span depth
// 9 — the POST /orders API of §6.1.1.
func SockShopLike(seed uint64) *App {
	app := Generate(Params{
		Name:         "sockshop",
		NumServices:  11,
		NumRPCs:      58,
		MaxCallDepth: 5,
		MaxFlowCalls: 29,
		NumFlows:     6,
		Seed:         seed,
	})
	rename(app, []string{
		"front-end", "orders", "carts", "catalogue", "user",
		"payment", "shipping", "queue-master", "rabbitmq",
		"session-db", "carts-db",
	})
	return app
}

// SocialNetworkLike returns an application mirroring DeathStarBench's
// SocialNetwork: 26 services, 61 RPCs, largest flow of 16 calls (31 spans,
// the ComposePost API) and span depth 9.
func SocialNetworkLike(seed uint64) *App {
	app := Generate(Params{
		Name:         "socialnetwork",
		NumServices:  26,
		NumRPCs:      61,
		MaxCallDepth: 5,
		MaxFlowCalls: 16,
		NumFlows:     8,
		Seed:         seed,
	})
	rename(app, []string{
		"nginx-web-server", "compose-post-service", "text-service",
		"media-service", "user-service", "unique-id-service",
		"url-shorten-service", "user-mention-service", "post-storage-service",
		"user-timeline-service", "home-timeline-service", "social-graph-service",
		"write-home-timeline-service", "user-timeline-mongodb",
		"post-storage-mongodb", "social-graph-mongodb", "media-mongodb",
		"user-mongodb", "url-shorten-mongodb", "post-storage-memcached",
		"user-timeline-redis", "home-timeline-redis", "social-graph-redis",
		"media-memcached", "user-memcached", "rabbitmq",
	})
	return app
}

// rename overwrites service names (and pods) in order. Panics if fewer
// names than services are supplied — presets are static, so this is a
// programming error, not an input error.
func rename(app *App, names []string) {
	if len(names) < len(app.Services) {
		panic("synth: preset rename list too short")
	}
	for i, s := range app.Services {
		s.Name = names[i]
		s.Pod = names[i] + "-0"
	}
}

// Corpus generates n independent applications with varying sizes and
// seeds — the stand-in for the paper's 50 production applications used to
// pre-train the transferable model (§6.5).
func Corpus(n int, seed uint64) []*App {
	apps := make([]*App, n)
	sizes := []int{8, 12, 16, 24, 32, 48, 64, 96, 128}
	for i := range apps {
		sz := sizes[i%len(sizes)]
		apps[i] = Generate(Params{
			Name:         fmt.Sprintf("corpus-%02d", i),
			NumRPCs:      sz,
			NumServices:  maxInt(2, sz/4),
			MaxCallDepth: 2 + i%5,
			NumFlows:     2 + i%3,
			Seed:         seed + uint64(i)*7919,
		})
	}
	return apps
}
