// Package synth implements the paper's §5 synthetic microservice benchmark
// generation: given target counts of services and RPCs, it allocates RPCs
// to tiered services, builds random RPC dependency graphs per operation
// flow, attaches execution graphs (sequential stages of parallel child
// invocations, plus asynchronous fire-and-forget calls), and injects
// configurable local workload kernels between invocations.
//
// The paper's generator emits deployable gRPC code; here the generated
// configuration is executed directly by the discrete-event simulator in
// internal/sim, which plays the role of the Kubernetes deployment and
// produces the OpenTelemetry-shaped traces the RCA algorithms consume.
package synth

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/sleuth-rca/sleuth/internal/xrand"
)

// Tier labels a service's position in the RPC dependency graph (§5.1.1).
type Tier string

// Service tiers. Frontend services sit at flow roots with high fan-out;
// leaf services terminate call chains (caches, stores, queues).
const (
	TierFrontend   Tier = "frontend"
	TierMiddleware Tier = "middleware"
	TierBackend    Tier = "backend"
	TierLeaf       Tier = "leaf"
)

// KernelType identifies which hardware/OS component a local workload
// kernel stresses — the dimension along which chaos faults couple to
// latency (a CPU fault slows CPU kernels, a disk fault disk kernels...).
type KernelType string

// Kernel types mirroring the paper's microbenchmark set (§5.1.4).
const (
	KernelCPU     KernelType = "cpu"
	KernelCache   KernelType = "cache"
	KernelMemory  KernelType = "memory"
	KernelNetwork KernelType = "network"
	KernelDisk    KernelType = "disk"
	KernelFS      KernelType = "fs"
	KernelSched   KernelType = "sched"
)

// AllKernelTypes lists every kernel type.
var AllKernelTypes = []KernelType{
	KernelCPU, KernelCache, KernelMemory, KernelNetwork, KernelDisk, KernelFS, KernelSched,
}

// Kernel is a local workload segment: a log-normal duration (µs) of the
// given stress type, executed between child-RPC invocations.
type Kernel struct {
	Type  KernelType `json:"type"`
	Mu    float64    `json:"mu"`    // log-normal µ of duration in µs
	Sigma float64    `json:"sigma"` // log-normal σ
}

// Service is one microservice with its placement.
type Service struct {
	Name string `json:"name"`
	Tier Tier   `json:"tier"`
	Pod  string `json:"pod"`
	Node string `json:"node"`
}

// RPC is one remote procedure exposed by a service.
type RPC struct {
	ID      int    `json:"id"`
	Service int    `json:"service"` // index into App.Services
	Name    string `json:"name"`
}

// Call is a node of an operation flow's call tree together with its
// execution graph: Stages lists sequential groups of child calls, the
// calls within one stage running in parallel; Work lists len(Stages)+1
// local processing segments interleaved around the stages.
type Call struct {
	RPC    int       `json:"rpc"`
	Async  bool      `json:"async,omitempty"`
	Stages [][]*Call `json:"stages,omitempty"`
	Work   []Kernel  `json:"work"`
	// TimeoutMicros caps how long the caller waits for this call
	// (0 = no timeout). Timeouts bound anomaly propagation, the v'
	// parameter of the paper's Eq. 2.
	TimeoutMicros int64 `json:"timeoutMicros,omitempty"`
	// ErrorProb is the baseline probability this call fails on its own.
	ErrorProb float64 `json:"errorProb,omitempty"`
}

// Flow is one operation type: an entry RPC and its call tree.
type Flow struct {
	Name string `json:"name"`
	Root *Call  `json:"root"`
}

// App is a complete generated microservice application.
type App struct {
	Name     string     `json:"name"`
	Services []*Service `json:"services"`
	RPCs     []*RPC     `json:"rpcs"`
	Flows    []*Flow    `json:"flows"`
	// FlowWeights is the request-mix weight per flow.
	FlowWeights []float64 `json:"flowWeights"`
	// Nodes lists the cluster nodes services are placed on.
	Nodes []string `json:"nodes"`
	Seed  uint64   `json:"seed"`
}

// Params configures the generator.
type Params struct {
	Name        string
	NumServices int
	NumRPCs     int
	// MaxCallDepth bounds the call-tree depth of the largest flow.
	MaxCallDepth int
	// NumFlows is the number of operation flows (≥1). The first flow is
	// the "full" flow covering every RPC; the rest are random subsets.
	NumFlows int
	// MaxFlowCalls, when positive, caps how many RPCs the largest flow
	// contains (presets use it to hit the Table-1 max-span figures of
	// apps whose biggest API does not touch every RPC).
	MaxFlowCalls int
	// ClusterNodes is the number of nodes services are spread over.
	ClusterNodes int
	// AsyncProb is the probability a non-root call is asynchronous.
	AsyncProb float64
	// ParallelBias in [0,1]: 1 packs all children of a call into one
	// parallel stage, 0 makes them fully sequential.
	ParallelBias float64
	// WorkMu/WorkSigma parameterise the base log-normal of local kernels
	// (µ in ln-µs). The defaults yield the heavy-tailed span-duration CDF
	// of the paper's Figure 3.
	WorkMu    float64
	WorkSigma float64
	// TimeoutMicros is the child-call timeout (0 disables).
	TimeoutMicros int64
	// BaseErrorProb is the per-call intrinsic failure probability.
	BaseErrorProb float64
	// Seed drives every random decision.
	Seed uint64
	// Vocabulary overrides the name vocabulary (nil = default).
	Vocabulary *Vocabulary
}

// withDefaults fills zero-valued fields with sensible defaults.
func (p Params) withDefaults() Params {
	if p.Name == "" {
		p.Name = fmt.Sprintf("synthetic-%d", p.NumRPCs)
	}
	if p.NumServices <= 0 {
		p.NumServices = maxInt(1, p.NumRPCs/4)
	}
	if p.MaxCallDepth <= 0 {
		p.MaxCallDepth = 7
	}
	if p.NumFlows <= 0 {
		p.NumFlows = 4
	}
	if p.ClusterNodes <= 0 {
		p.ClusterNodes = 20
	}
	if p.AsyncProb == 0 {
		p.AsyncProb = 0.08
	}
	if p.ParallelBias == 0 {
		p.ParallelBias = 0.5
	}
	if p.WorkMu == 0 {
		p.WorkMu = 7.2 // e^7.2 ≈ 1.3ms
	}
	if p.WorkSigma == 0 {
		p.WorkSigma = 0.8
	}
	if p.TimeoutMicros == 0 {
		p.TimeoutMicros = 2_000_000
	}
	if p.BaseErrorProb == 0 {
		p.BaseErrorProb = 0.0015
	}
	if p.Vocabulary == nil {
		p.Vocabulary = DefaultVocabulary()
	}
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Generate builds a synthetic application from params. The same params
// (including Seed) always produce the identical application.
func Generate(params Params) *App {
	p := params.withDefaults()
	rng := xrand.New(p.Seed)
	app := &App{Name: p.Name, Seed: p.Seed}

	// Cluster nodes.
	for i := 0; i < p.ClusterNodes; i++ {
		app.Nodes = append(app.Nodes, fmt.Sprintf("node-%02d", i))
	}

	// Services with tier labels (§5.1.1). The tier mix skews toward
	// backend/leaf services, matching production call graphs where entry
	// tiers are thin and storage tiers wide.
	tiers := tierAssignment(p.NumServices, rng.Split("tiers"))
	nameRng := rng.Split("names")
	svcNames := p.Vocabulary.ServiceNames(p.NumServices, nameRng)
	for i := 0; i < p.NumServices; i++ {
		app.Services = append(app.Services, &Service{
			Name: svcNames[i],
			Tier: tiers[i],
			Pod:  fmt.Sprintf("%s-0", svcNames[i]),
			Node: app.Nodes[rng.Split("placement").Intn(len(app.Nodes))],
		})
	}
	// Deterministic placement: re-derive per service.
	placeRng := rng.Split("placement2")
	for _, s := range app.Services {
		s.Node = app.Nodes[placeRng.Intn(len(app.Nodes))]
	}

	// RPC allocation: every service gets at least one RPC; the remainder
	// are distributed with a bias toward backend/leaf services.
	opRng := rng.Split("ops")
	svcOf := make([]int, p.NumRPCs)
	for i := 0; i < p.NumRPCs; i++ {
		if i < p.NumServices {
			svcOf[i] = i
			continue
		}
		weights := make([]float64, p.NumServices)
		for s := range weights {
			switch app.Services[s].Tier {
			case TierFrontend:
				weights[s] = 0.5
			case TierMiddleware:
				weights[s] = 1
			case TierBackend:
				weights[s] = 1.6
			case TierLeaf:
				weights[s] = 1.2
			}
		}
		svcOf[i] = opRng.WeightedChoice(weights)
	}
	for i := 0; i < p.NumRPCs; i++ {
		app.RPCs = append(app.RPCs, &RPC{
			ID:      i,
			Service: svcOf[i],
			Name:    p.Vocabulary.OperationName(app.Services[svcOf[i]].Name, i, nameRng),
		})
	}

	// Flows: the first covers all RPCs (defines the Table-1 max-spans
	// figure); later flows sample subsets for request-mix diversity.
	flowRng := rng.Split("flows")
	fullSize := p.NumRPCs
	if p.MaxFlowCalls > 0 && p.MaxFlowCalls < fullSize {
		fullSize = p.MaxFlowCalls
	}
	var all []int
	if fullSize == p.NumRPCs {
		all = make([]int, p.NumRPCs)
		for i := range all {
			all[i] = i
		}
	} else {
		all = sampleRPCSubset(app, fullSize, flowRng.Split("full-subset"))
	}
	app.Flows = append(app.Flows, buildFlow(app, p, "full", all, flowRng.Split("flow-full")))
	app.FlowWeights = append(app.FlowWeights, 1)
	for f := 1; f < p.NumFlows; f++ {
		frng := flowRng.Split(fmt.Sprintf("flow-%d", f))
		size := maxInt(2, p.NumRPCs/(2<<uint(f%3)))
		if size > fullSize {
			size = fullSize
		}
		subset := sampleRPCSubset(app, size, frng)
		app.Flows = append(app.Flows, buildFlow(app, p, fmt.Sprintf("op%d", f), subset, frng))
		app.FlowWeights = append(app.FlowWeights, 2+float64(flowRng.Intn(5)))
	}
	return app
}

// tierAssignment labels services with tiers in fixed proportions.
func tierAssignment(n int, rng *xrand.Rand) []Tier {
	tiers := make([]Tier, n)
	for i := range tiers {
		switch {
		case i == 0:
			tiers[i] = TierFrontend
		case i < maxInt(2, n/8):
			tiers[i] = TierFrontend
		case i < n*2/5:
			tiers[i] = TierMiddleware
		case i < n*3/4:
			tiers[i] = TierBackend
		default:
			tiers[i] = TierLeaf
		}
	}
	// Shuffle all but the first (index 0 stays frontend so flows always
	// have an entry service).
	rng.Shuffle(n-1, func(i, j int) { tiers[i+1], tiers[j+1] = tiers[j+1], tiers[i+1] })
	tiers[0] = TierFrontend
	return tiers
}

// sampleRPCSubset picks size RPCs always including a frontend-owned RPC.
func sampleRPCSubset(app *App, size int, rng *xrand.Rand) []int {
	if size > len(app.RPCs) {
		size = len(app.RPCs)
	}
	perm := rng.Perm(len(app.RPCs))
	subset := perm[:size]
	// Ensure a frontend RPC is present to act as root.
	hasFront := false
	for _, id := range subset {
		if app.Services[app.RPCs[id].Service].Tier == TierFrontend {
			hasFront = true
			break
		}
	}
	if !hasFront {
		for _, id := range perm[size:] {
			if app.Services[app.RPCs[id].Service].Tier == TierFrontend {
				subset[0] = id
				break
			}
		}
	}
	return subset
}

// buildFlow constructs the RPC dependency graph for one operation flow
// (§5.1.2) and its execution graphs (§5.1.3): a random tree over the given
// RPC set whose shallow nodes prefer frontend/middleware RPCs and deep
// nodes backend/leaf RPCs, with children partitioned into sequential
// stages of parallel calls.
func buildFlow(app *App, p Params, name string, rpcIDs []int, rng *xrand.Rand) *Flow {
	// Order candidates by tier depth preference with random jitter.
	tierDepth := func(id int) float64 {
		switch app.Services[app.RPCs[id].Service].Tier {
		case TierFrontend:
			return 0
		case TierMiddleware:
			return 1
		case TierBackend:
			return 2
		default:
			return 3
		}
	}
	ids := append([]int(nil), rpcIDs...)
	// Root: the shallowest-tier RPC.
	rootIdx := 0
	for i, id := range ids {
		if tierDepth(id) < tierDepth(ids[rootIdx]) {
			rootIdx = i
		}
		_ = i
	}
	ids[0], ids[rootIdx] = ids[rootIdx], ids[0]
	// Sort the rest by tier depth + jitter so the tree layers respect tiers.
	rest := ids[1:]
	keys := make([]float64, len(rest))
	for i, id := range rest {
		keys[i] = tierDepth(id) + rng.Float64()*1.5
	}
	for i := 1; i < len(rest); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
			rest[j], rest[j-1] = rest[j-1], rest[j]
		}
	}

	calls := make([]*Call, len(ids))
	depth := make([]int, len(ids))
	for i, id := range ids {
		calls[i] = &Call{RPC: id, TimeoutMicros: p.TimeoutMicros, ErrorProb: p.BaseErrorProb}
	}
	// Attach each subsequent call under an earlier one whose depth leaves
	// room, preferring recent shallow parents (produces Alibaba-like wide
	// shallow layers near the top and chains below).
	type childrenOf = []*Call
	kids := make([]childrenOf, len(ids))
	for i := 1; i < len(ids); i++ {
		// Candidate parents: indexes < i with depth < MaxCallDepth-1.
		weights := make([]float64, i)
		for j := 0; j < i; j++ {
			if depth[j] >= p.MaxCallDepth-1 {
				continue
			}
			// Prefer parents one tier up and with small current fan-out.
			w := 1.0 / (1 + float64(len(kids[j])))
			dt := tierDepth(ids[i]) - tierDepth(ids[j])
			if dt >= 0.5 {
				w *= 3
			}
			// Depth shaping: bias toward mid-depth parents.
			w *= 1 + float64(depth[j])
			weights[j] = w
		}
		parent := rng.WeightedChoice(weights)
		kids[parent] = append(kids[parent], calls[i])
		depth[i] = depth[parent] + 1
		calls[i].Async = rng.Bernoulli(p.AsyncProb)
	}
	// Partition children into execution stages and attach local kernels.
	for i, c := range calls {
		c.Stages = stageChildren(kids[i], p.ParallelBias, rng)
		c.Work = make([]Kernel, len(c.Stages)+1)
		for w := range c.Work {
			c.Work[w] = Kernel{
				Type:  AllKernelTypes[rng.Intn(len(AllKernelTypes))],
				Mu:    p.WorkMu + rng.Normal(0, 0.5),
				Sigma: p.WorkSigma * (0.7 + 0.6*rng.Float64()),
			}
		}
		// Leaf-tier calls skew shorter (caches) but with heavier tails.
		if app.Services[app.RPCs[c.RPC].Service].Tier == TierLeaf {
			for w := range c.Work {
				c.Work[w].Mu -= 1.5
				c.Work[w].Sigma *= 1.3
			}
		}
	}
	return &Flow{Name: name, Root: calls[0]}
}

// stageChildren partitions children into sequential stages of parallel
// calls. Async children always join the first stage (fire-and-forget).
func stageChildren(children []*Call, parallelBias float64, rng *xrand.Rand) [][]*Call {
	if len(children) == 0 {
		return nil
	}
	var stages [][]*Call
	current := []*Call{}
	for _, c := range children {
		if c.Async {
			// Fire-and-forget joins whatever stage is open.
			current = append(current, c)
			continue
		}
		if len(current) > 0 && !rng.Bernoulli(parallelBias) {
			stages = append(stages, current)
			current = nil
		}
		current = append(current, c)
	}
	if len(current) > 0 {
		stages = append(stages, current)
	}
	return stages
}

// Walk visits every call in the flow tree in depth-first order.
func (f *Flow) Walk(visit func(c *Call, depth int)) {
	var rec func(c *Call, d int)
	rec = func(c *Call, d int) {
		visit(c, d)
		for _, stage := range c.Stages {
			for _, child := range stage {
				rec(child, d+1)
			}
		}
	}
	rec(f.Root, 0)
}

// NumCalls returns the number of calls in the flow tree.
func (f *Flow) NumCalls() int {
	n := 0
	f.Walk(func(*Call, int) { n++ })
	return n
}

// MaxCallDepth returns the deepest call level (root = 1).
func (f *Flow) MaxCallDepth() int {
	max := 0
	f.Walk(func(_ *Call, d int) {
		if d+1 > max {
			max = d + 1
		}
	})
	return max
}

// MaxFanout returns the largest number of children of any call.
func (f *Flow) MaxFanout() int {
	max := 0
	f.Walk(func(c *Call, _ int) {
		n := 0
		for _, s := range c.Stages {
			n += len(s)
		}
		if n > max {
			max = n
		}
	})
	return max
}

// Spec summarises an application in the shape of the paper's Table 1.
type Spec struct {
	Name         string
	Services     int
	RPCs         int
	MaxSpans     int
	MaxDepth     int // span-tree depth of the largest flow
	MaxOutDegree int
}

// Spec computes the Table-1 row for the app. Span counts follow the
// simulator's emission rule: the root call yields one server span and every
// child call a client+server pair, so a flow with k calls yields 2k-1
// spans; span-tree depth is 2·callDepth-1.
func (a *App) Spec() Spec {
	s := Spec{Name: a.Name, Services: len(a.Services), RPCs: len(a.RPCs)}
	for _, f := range a.Flows {
		if spans := 2*f.NumCalls() - 1; spans > s.MaxSpans {
			s.MaxSpans = spans
		}
		if d := 2*f.MaxCallDepth() - 1; d > s.MaxDepth {
			s.MaxDepth = d
		}
		if fo := f.MaxFanout(); fo > s.MaxOutDegree {
			s.MaxOutDegree = fo
		}
	}
	return s
}

// ServiceOf returns the service owning RPC id.
func (a *App) ServiceOf(rpcID int) *Service {
	return a.Services[a.RPCs[rpcID].Service]
}

// ServiceIndex returns the index of the service with the given name, or -1.
func (a *App) ServiceIndex(name string) int {
	for i, s := range a.Services {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// SaveJSON writes the app configuration to path.
func (a *App) SaveJSON(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadJSON reads an app configuration from path.
func LoadJSON(path string) (*App, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var app App
	if err := json.Unmarshal(data, &app); err != nil {
		return nil, fmt.Errorf("synth: parsing %s: %w", path, err)
	}
	return &app, nil
}
