package synth

import (
	"fmt"

	"github.com/sleuth-rca/sleuth/internal/xrand"
)

// Vocabulary supplies realistic service and operation names (§5.1.1 notes
// the generator assigns commonly used names so synthetic traces carry
// plausible semantics). A disjoint vocabulary supports the paper's §6.6
// semantic-sensitivity experiment.
type Vocabulary struct {
	ServiceStems    []string
	ServiceSuffixes []string
	Verbs           []string
	Nouns           []string
	// Tag distinguishes vocabularies in generated names.
	Tag string
}

// DefaultVocabulary returns the standard e-commerce/social vocabulary.
func DefaultVocabulary() *Vocabulary {
	return &Vocabulary{
		ServiceStems: []string{
			"auth", "user", "cart", "checkout", "payment", "catalog",
			"search", "inventory", "shipping", "recommend", "review",
			"order", "profile", "session", "notify", "media", "timeline",
			"compose", "social-graph", "url-shorten", "text", "geo",
			"rate", "reservation", "billing", "wallet", "coupon",
			"fraud", "ledger", "pricing", "ads", "feed", "message",
			"presence", "gateway", "router", "aggregator", "ranking",
		},
		ServiceSuffixes: []string{"service", "api", "svc", "backend", "store", "cache", "db", "mq"},
		Verbs: []string{
			"Get", "List", "Create", "Update", "Delete", "Query", "Fetch",
			"Put", "Post", "Compose", "Upload", "Read", "Write", "Scan",
			"Search", "Validate", "Check", "Sync", "Publish", "Consume",
		},
		Nouns: []string{
			"User", "Order", "Item", "Cart", "Payment", "Profile", "Post",
			"Media", "Timeline", "Session", "Token", "Product", "Price",
			"Stock", "Address", "Review", "Rating", "Follower", "Message",
			"Recommendation", "Url", "Text", "Account", "Balance",
		},
		Tag: "std",
	}
}

// DisjointVocabulary returns a vocabulary with no overlap with the default
// one — abstract identifiers with no transferable semantics, used to
// measure how much the model leans on name semantics (Figure 8).
func DisjointVocabulary() *Vocabulary {
	var stems, verbs, nouns []string
	for i := 0; i < 40; i++ {
		stems = append(stems, fmt.Sprintf("zz-unit-%02d", i))
	}
	for i := 0; i < 20; i++ {
		verbs = append(verbs, fmt.Sprintf("Xfn%02d", i))
		nouns = append(nouns, fmt.Sprintf("Qobj%02d", i))
	}
	return &Vocabulary{
		ServiceStems:    stems,
		ServiceSuffixes: []string{"mod", "blk"},
		Verbs:           verbs,
		Nouns:           nouns,
		Tag:             "rnd",
	}
}

// ServiceNames produces n distinct service names.
func (v *Vocabulary) ServiceNames(n int, rng *xrand.Rand) []string {
	names := make([]string, 0, n)
	seen := make(map[string]bool)
	for len(names) < n {
		stem := v.ServiceStems[rng.Intn(len(v.ServiceStems))]
		name := stem
		if rng.Bernoulli(0.6) {
			name = stem + "-" + v.ServiceSuffixes[rng.Intn(len(v.ServiceSuffixes))]
		}
		for i := 2; seen[name]; i++ {
			name = fmt.Sprintf("%s-%d", stem, i)
		}
		seen[name] = true
		names = append(names, name)
	}
	return names
}

// OperationName produces an operation name for RPC id hosted by svcName.
func (v *Vocabulary) OperationName(svcName string, id int, rng *xrand.Rand) string {
	verb := v.Verbs[rng.Intn(len(v.Verbs))]
	noun := v.Nouns[rng.Intn(len(v.Nouns))]
	if rng.Bernoulli(0.15) {
		return fmt.Sprintf("%s%sV%d", verb, noun, 1+rng.Intn(3))
	}
	return verb + noun
}

// RandomizeNames rewrites every service and operation name of the app from
// a different vocabulary, leaving the structure untouched. Used by the
// §6.6 experiment: the test traces describe the same system but carry
// misleading (disjoint) semantic information.
func (a *App) RandomizeNames(v *Vocabulary, seed uint64) {
	rng := xrand.New(seed)
	names := v.ServiceNames(len(a.Services), rng.Split("svc"))
	for i, s := range a.Services {
		s.Name = names[i]
		s.Pod = names[i] + "-0"
	}
	opRng := rng.Split("ops")
	for _, r := range a.RPCs {
		r.Name = v.OperationName(a.Services[r.Service].Name, r.ID, opRng)
	}
}
