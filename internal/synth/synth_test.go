package synth

import (
	"path/filepath"
	"testing"

	"github.com/sleuth-rca/sleuth/internal/xrand"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Synthetic(64, 42)
	b := Synthetic(64, 42)
	if a.Spec() != b.Spec() {
		t.Fatalf("same seed produced different specs: %+v vs %+v", a.Spec(), b.Spec())
	}
	for i := range a.Services {
		if a.Services[i].Name != b.Services[i].Name || a.Services[i].Node != b.Services[i].Node {
			t.Fatal("same seed produced different services")
		}
	}
	c := Synthetic(64, 43)
	if a.Services[1].Name == c.Services[1].Name && a.Services[2].Name == c.Services[2].Name && a.Services[3].Name == c.Services[3].Name {
		t.Fatal("different seeds produced identical service names")
	}
}

func TestSyntheticSpecsMatchTable1(t *testing.T) {
	cases := []struct {
		n        int
		services int
		maxDepth int // span depth, Table 1 row "Max depth"
	}{
		{16, 4, 3},
		{64, 16, 7},
		{256, 64, 15},
		{1024, 256, 15},
	}
	for _, c := range cases {
		app := Synthetic(c.n, 1)
		spec := app.Spec()
		if spec.Services != c.services {
			t.Errorf("Synthetic-%d services = %d, want %d", c.n, spec.Services, c.services)
		}
		if spec.RPCs != c.n {
			t.Errorf("Synthetic-%d RPCs = %d, want %d", c.n, spec.RPCs, c.n)
		}
		if spec.MaxSpans != 2*c.n-1 {
			t.Errorf("Synthetic-%d max spans = %d, want %d", c.n, spec.MaxSpans, 2*c.n-1)
		}
		if spec.MaxDepth > c.maxDepth {
			t.Errorf("Synthetic-%d max depth = %d, want <= %d", c.n, spec.MaxDepth, c.maxDepth)
		}
		if spec.MaxDepth < 3 {
			t.Errorf("Synthetic-%d max depth = %d, degenerate", c.n, spec.MaxDepth)
		}
	}
}

func TestPresetSpecs(t *testing.T) {
	ss := SockShopLike(7).Spec()
	if ss.Services != 11 || ss.RPCs != 58 {
		t.Errorf("SockShop spec = %+v", ss)
	}
	if ss.MaxSpans != 57 {
		t.Errorf("SockShop max spans = %d, want 57", ss.MaxSpans)
	}
	sn := SocialNetworkLike(7).Spec()
	if sn.Services != 26 || sn.RPCs != 61 {
		t.Errorf("SocialNetwork spec = %+v", sn)
	}
	if sn.MaxSpans != 31 {
		t.Errorf("SocialNetwork max spans = %d, want 31", sn.MaxSpans)
	}
}

func TestEveryServiceHasRPC(t *testing.T) {
	app := Synthetic(64, 3)
	owned := make(map[int]bool)
	for _, r := range app.RPCs {
		owned[r.Service] = true
	}
	for i := range app.Services {
		if !owned[i] {
			t.Errorf("service %d has no RPCs", i)
		}
	}
}

func TestFlowStructure(t *testing.T) {
	app := Synthetic(64, 5)
	if len(app.Flows) != 4 || len(app.FlowWeights) != 4 {
		t.Fatalf("flows = %d, weights = %d", len(app.Flows), len(app.FlowWeights))
	}
	full := app.Flows[0]
	if full.NumCalls() != 64 {
		t.Fatalf("full flow calls = %d", full.NumCalls())
	}
	// Every call's Work must have len(Stages)+1 segments.
	for _, f := range app.Flows {
		f.Walk(func(c *Call, _ int) {
			if len(c.Work) != len(c.Stages)+1 {
				t.Fatalf("call %d: %d stages but %d work segments", c.RPC, len(c.Stages), len(c.Work))
			}
			if c.TimeoutMicros <= 0 {
				t.Fatalf("call %d: missing timeout", c.RPC)
			}
		})
	}
	// Depth bound respected.
	if d := full.MaxCallDepth(); d > 4 {
		t.Fatalf("call depth %d exceeds configured max 4", d)
	}
	// Root is hosted by a frontend service.
	if app.ServiceOf(full.Root.RPC).Tier != TierFrontend {
		t.Fatalf("flow root tier = %s", app.ServiceOf(full.Root.RPC).Tier)
	}
}

func TestTierMix(t *testing.T) {
	app := Synthetic(256, 11)
	counts := map[Tier]int{}
	for _, s := range app.Services {
		counts[s.Tier]++
	}
	for _, tier := range []Tier{TierFrontend, TierMiddleware, TierBackend, TierLeaf} {
		if counts[tier] == 0 {
			t.Errorf("no services in tier %s", tier)
		}
	}
	if counts[TierFrontend] > counts[TierBackend] {
		t.Errorf("tier mix inverted: %v", counts)
	}
}

func TestSaveLoadJSON(t *testing.T) {
	app := Synthetic(16, 9)
	path := filepath.Join(t.TempDir(), "app.json")
	if err := app.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Spec() != app.Spec() {
		t.Fatalf("round trip changed spec: %+v vs %+v", back.Spec(), app.Spec())
	}
	if _, err := LoadJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSlowService(t *testing.T) {
	app := Synthetic(64, 13)
	svc := app.ServiceAtCallDepth(2)
	if svc < 0 {
		t.Fatal("no service at depth 2")
	}
	var before float64
	app.Flows[0].Walk(func(c *Call, _ int) {
		if app.RPCs[c.RPC].Service == svc && before == 0 {
			before = c.Work[0].Mu
		}
	})
	app.SlowService(svc, 10)
	var after float64
	app.Flows[0].Walk(func(c *Call, _ int) {
		if app.RPCs[c.RPC].Service == svc && after == 0 {
			after = c.Work[0].Mu
		}
	})
	// ln(10) ≈ 2.3026
	if diff := after - before; diff < 2.2 || diff > 2.4 {
		t.Fatalf("SlowService shifted mu by %v, want ~2.3", diff)
	}
}

func TestRemoveService(t *testing.T) {
	app := Synthetic(64, 17)
	svc := app.ServiceAtCallDepth(2)
	callsBefore := app.Flows[0].NumCalls()
	removedCalls := 0
	for _, f := range app.Flows {
		f.Walk(func(c *Call, _ int) {
			if app.RPCs[c.RPC].Service == svc {
				removedCalls++
			}
		})
	}
	if err := app.RemoveService(svc); err != nil {
		t.Fatal(err)
	}
	// No calls to the removed service remain anywhere.
	for _, f := range app.Flows {
		f.Walk(func(c *Call, _ int) {
			if app.RPCs[c.RPC].Service == svc {
				t.Fatalf("call to removed service %d survives", svc)
			}
			if len(c.Work) != len(c.Stages)+1 {
				t.Fatal("work/stage invariant broken after removal")
			}
		})
	}
	if removedCalls == 0 {
		t.Fatal("test picked a service with no calls")
	}
	lost := callsBefore - app.Flows[0].NumCalls()
	if lost <= 0 {
		t.Fatalf("full flow lost %d calls", lost)
	}
}

func TestRemoveRootServiceRejected(t *testing.T) {
	app := Synthetic(16, 19)
	rootSvc := app.RPCs[app.Flows[0].Root.RPC].Service
	if err := app.RemoveService(rootSvc); err == nil {
		t.Fatal("removing the root service should fail")
	}
}

func TestAddService(t *testing.T) {
	app := Synthetic(64, 23)
	before := app.Flows[0].NumCalls()
	idx := app.AddService("brand-new-svc", 2, 99)
	if app.Services[idx].Name != "brand-new-svc" {
		t.Fatal("service not added")
	}
	if app.Flows[0].NumCalls() != before+1 {
		t.Fatalf("calls = %d, want %d", app.Flows[0].NumCalls(), before+1)
	}
	// New call present and owned by the new service.
	found := false
	app.Flows[0].Walk(func(c *Call, _ int) {
		if app.RPCs[c.RPC].Service == idx {
			found = true
		}
	})
	if !found {
		t.Fatal("new service's call not reachable")
	}
}

func TestAddChains(t *testing.T) {
	app := Synthetic(64, 29)
	before := app.Flows[0].NumCalls()
	added := app.AddChains(3, 3, 7)
	if len(added) != 9 {
		t.Fatalf("added %d services, want 9", len(added))
	}
	if app.Flows[0].NumCalls() != before+9 {
		t.Fatalf("calls = %d, want %d", app.Flows[0].NumCalls(), before+9)
	}
	// Chains must be linear: each non-tail chain service has exactly one
	// child owned by the next chain service.
	spec := app.Spec()
	if spec.Services != 64/4+9 {
		t.Fatalf("services = %d", spec.Services)
	}
}

func TestCorpus(t *testing.T) {
	apps := Corpus(10, 5)
	if len(apps) != 10 {
		t.Fatalf("corpus size = %d", len(apps))
	}
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a.Name] {
			t.Fatalf("duplicate app name %s", a.Name)
		}
		seen[a.Name] = true
		if len(a.RPCs) < 8 {
			t.Fatalf("corpus app too small: %d RPCs", len(a.RPCs))
		}
	}
	// Sizes vary.
	if len(apps[0].RPCs) == len(apps[1].RPCs) {
		t.Fatal("corpus sizes do not vary")
	}
}

func TestRandomizeNamesDisjoint(t *testing.T) {
	app := Synthetic(16, 31)
	origNames := map[string]bool{}
	for _, s := range app.Services {
		origNames[s.Name] = true
	}
	app.RandomizeNames(DisjointVocabulary(), 77)
	for _, s := range app.Services {
		if origNames[s.Name] {
			t.Fatalf("name %q survived randomization", s.Name)
		}
	}
	// Structure untouched.
	if app.Spec().RPCs != 16 || app.Flows[0].NumCalls() != 16 {
		t.Fatal("randomization changed structure")
	}
}

func TestVocabularyDistinctNames(t *testing.T) {
	v := DefaultVocabulary()
	names := v.ServiceNames(100, newTestRng())
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate service name %q", n)
		}
		seen[n] = true
	}
}

func newTestRng() *xrand.Rand { return xrand.New(123) }
