package synth

import (
	"fmt"
	"math"

	"github.com/sleuth-rca/sleuth/internal/xrand"
)

// Mutation operations reproducing the service updates of the paper's §6.4
// (Figure 6): A — slow one mid-level service down 10×; B — remove it;
// C — add a service at level two; D — add three chains of three services
// in the middle of the RPC dependency graph.

// ServiceAtCallDepth returns the index of a service that owns a call at
// the given call depth (0 = root) in the app's largest flow, or -1 if the
// depth is empty. Services that root any flow are skipped so the result is
// always usable with RemoveService (the Figure-6 update sequence slows a
// service with update A and removes the same service with update B).
func (a *App) ServiceAtCallDepth(depth int) int {
	rootOwners := make(map[int]bool)
	for _, f := range a.Flows {
		rootOwners[a.RPCs[f.Root.RPC].Service] = true
	}
	found := -1
	a.Flows[0].Walk(func(c *Call, d int) {
		if d == depth && found < 0 && !rootOwners[a.RPCs[c.RPC].Service] {
			found = a.RPCs[c.RPC].Service
		}
	})
	return found
}

// SlowService multiplies the local processing time of every call owned by
// the service by factor (update A uses factor 10).
func (a *App) SlowService(svcIdx int, factor float64) {
	if factor <= 0 {
		panic("synth: SlowService factor must be positive")
	}
	dMu := math.Log(factor)
	for _, f := range a.Flows {
		f.Walk(func(c *Call, _ int) {
			if a.RPCs[c.RPC].Service == svcIdx {
				for i := range c.Work {
					c.Work[i].Mu += dMu
				}
			}
		})
	}
}

// RemoveService splices every call owned by the service out of every flow:
// the removed call's child stages are merged into the parent's stage list
// at the call's position. Root calls cannot be removed. The service's RPC
// entries remain in the tables (unreferenced), so indexes stay stable.
func (a *App) RemoveService(svcIdx int) error {
	for _, f := range a.Flows {
		if a.RPCs[f.Root.RPC].Service == svcIdx {
			return fmt.Errorf("synth: cannot remove service %d owning flow root %q", svcIdx, f.Name)
		}
	}
	owned := func(c *Call) bool { return a.RPCs[c.RPC].Service == svcIdx }
	for _, f := range a.Flows {
		var rec func(c *Call)
		rec = func(c *Call) {
			var newStages [][]*Call
			for _, stage := range c.Stages {
				var kept []*Call
				for _, child := range stage {
					if owned(child) {
						// Promote the removed call's stages in place.
						for _, sub := range child.Stages {
							if len(kept) > 0 {
								newStages = append(newStages, kept)
								kept = nil
							}
							newStages = append(newStages, sub)
						}
						continue
					}
					kept = append(kept, child)
				}
				if len(kept) > 0 {
					newStages = append(newStages, kept)
				}
			}
			c.Stages = newStages
			// Work segments must match stages+1.
			c.Work = resizeWork(c.Work, len(c.Stages)+1)
			for _, stage := range c.Stages {
				for _, child := range stage {
					rec(child)
				}
			}
		}
		rec(f.Root)
	}
	return nil
}

// resizeWork pads or trims a kernel list to n entries, reusing the last
// kernel's parameters for padding.
func resizeWork(work []Kernel, n int) []Kernel {
	if len(work) == n {
		return work
	}
	if len(work) > n {
		return work[:n]
	}
	last := Kernel{Type: KernelCPU, Mu: 7, Sigma: 0.8}
	if len(work) > 0 {
		last = work[len(work)-1]
	}
	for len(work) < n {
		work = append(work, last)
	}
	return work
}

// AddService creates a new service with one RPC and inserts a call to it
// under a call at depth level-1 of the largest flow (update C uses level
// 2). It returns the new service index.
func (a *App) AddService(name string, level int, seed uint64) int {
	rng := xrand.New(seed)
	svcIdx := len(a.Services)
	a.Services = append(a.Services, &Service{
		Name: name,
		Tier: TierMiddleware,
		Pod:  name + "-0",
		Node: a.Nodes[rng.Intn(len(a.Nodes))],
	})
	rpcID := len(a.RPCs)
	a.RPCs = append(a.RPCs, &RPC{ID: rpcID, Service: svcIdx, Name: "Handle" + name})
	call := &Call{
		RPC:           rpcID,
		TimeoutMicros: 2_000_000,
		ErrorProb:     0.0015,
		Work:          []Kernel{{Type: KernelCPU, Mu: 7.2, Sigma: 0.8}},
	}
	a.insertCallAtDepth(call, level-1, rng)
	return svcIdx
}

// AddChains appends k chains of chainLen new services each, attaching each
// chain under a mid-depth call of the largest flow (update D uses k=3,
// chainLen=3). It returns the indexes of the new services.
func (a *App) AddChains(k, chainLen int, seed uint64) []int {
	rng := xrand.New(seed)
	midDepth := a.Flows[0].MaxCallDepth() / 2
	var added []int
	for c := 0; c < k; c++ {
		var prev *Call
		for l := 0; l < chainLen; l++ {
			name := fmt.Sprintf("chain%d-svc%d-%d", c, l, seed%1000)
			svcIdx := len(a.Services)
			a.Services = append(a.Services, &Service{
				Name: name, Tier: TierMiddleware,
				Pod:  name + "-0",
				Node: a.Nodes[rng.Intn(len(a.Nodes))],
			})
			rpcID := len(a.RPCs)
			a.RPCs = append(a.RPCs, &RPC{ID: rpcID, Service: svcIdx, Name: "Process" + name})
			call := &Call{
				RPC:           rpcID,
				TimeoutMicros: 2_000_000,
				ErrorProb:     0.0015,
				Work:          []Kernel{{Type: KernelCPU, Mu: 7.0, Sigma: 0.8}},
			}
			if prev == nil {
				a.insertCallAtDepth(call, midDepth, rng)
			} else {
				prev.Stages = append(prev.Stages, []*Call{call})
				prev.Work = resizeWork(prev.Work, len(prev.Stages)+1)
			}
			prev = call
			added = append(added, svcIdx)
		}
	}
	return added
}

// insertCallAtDepth attaches call under a randomly chosen call at the given
// depth of the largest flow (falling back to the root when the depth is
// empty).
func (a *App) insertCallAtDepth(call *Call, depth int, rng *xrand.Rand) {
	var candidates []*Call
	a.Flows[0].Walk(func(c *Call, d int) {
		if d == depth {
			candidates = append(candidates, c)
		}
	})
	parent := a.Flows[0].Root
	if len(candidates) > 0 {
		parent = candidates[rng.Intn(len(candidates))]
	}
	parent.Stages = append(parent.Stages, []*Call{call})
	parent.Work = resizeWork(parent.Work, len(parent.Stages)+1)
}
