module github.com/sleuth-rca/sleuth

go 1.22
