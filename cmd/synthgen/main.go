// Command synthgen generates synthetic microservice benchmark
// configurations (§5) and writes them as JSON for the simulator and the
// other tools.
//
// Usage:
//
//	synthgen -rpcs 256 -seed 7 -out syn256.json
//	synthgen -preset sockshop -out sockshop.json
//	synthgen -rpcs 64 -spec            # print the Table-1 style spec only
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/sleuth-rca/sleuth/internal/synth"
)

func main() {
	var (
		rpcs     = flag.Int("rpcs", 64, "number of RPCs in the generated app")
		services = flag.Int("services", 0, "number of services (default rpcs/4)")
		depth    = flag.Int("depth", 0, "max call depth (default by size)")
		flows    = flag.Int("flows", 4, "number of operation flows")
		seed     = flag.Uint64("seed", 1, "generation seed")
		preset   = flag.String("preset", "", "preset app: sockshop | socialnetwork")
		out      = flag.String("out", "", "output JSON path (default stdout summary only)")
		spec     = flag.Bool("spec", false, "print the Table-1 style specification")
	)
	flag.Parse()

	var app *synth.App
	switch *preset {
	case "sockshop":
		app = synth.SockShopLike(*seed)
	case "socialnetwork":
		app = synth.SocialNetworkLike(*seed)
	case "":
		if *depth > 0 || *services > 0 {
			app = synth.Generate(synth.Params{
				NumRPCs:      *rpcs,
				NumServices:  *services,
				MaxCallDepth: *depth,
				NumFlows:     *flows,
				Seed:         *seed,
			})
		} else {
			app = synth.Synthetic(*rpcs, *seed)
		}
	default:
		fmt.Fprintf(os.Stderr, "synthgen: unknown preset %q\n", *preset)
		os.Exit(2)
	}

	s := app.Spec()
	fmt.Printf("generated %s: services=%d rpcs=%d maxSpans=%d maxDepth=%d maxOutDegree=%d\n",
		s.Name, s.Services, s.RPCs, s.MaxSpans, s.MaxDepth, s.MaxOutDegree)
	if *spec {
		for i, svc := range app.Services {
			fmt.Printf("  service %2d: %-28s tier=%-10s pod=%s node=%s\n", i, svc.Name, svc.Tier, svc.Pod, svc.Node)
		}
	}
	if *out != "" {
		if err := app.SaveJSON(*out); err != nil {
			fmt.Fprintf(os.Stderr, "synthgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
