// Command sleuthctl drives the Sleuth pipeline against stored traces:
//
//	sleuthctl train   -traces spans.jsonl -model model.gob [-epochs 5]
//	sleuthctl rca     -traces incident.jsonl -normal spans.jsonl -model model.gob [-explain]
//	sleuthctl cluster -traces incident.jsonl
//	sleuthctl ops     -traces spans.jsonl      # per-operation statistics
//	sleuthctl selftrace -in selftrace.json     # replay a pipeline self-trace
//	sleuthctl traces  -addr localhost:4318 -slowest   # list ring-resident self-traces
//	sleuthctl trace   -addr localhost:4318,localhost:8500 <id>  # joined span tree
//	sleuthctl watch   -addr localhost:4318     # live sparkline telemetry view
//	sleuthctl alerts  -addr localhost:4318     # watchdog alert states
//
// Trace files are span JSONL as written by tracegen or the collector.
//
// train and rca accept -selftrace out.json to record Sleuth's own pipeline
// stages as an OTLP document in the same span schema it analyzes, and
// -metrics to print the metrics-registry snapshot after the run. A
// self-trace replays through `sleuthctl selftrace`, which applies Sleuth's
// own trace machinery (assembly, exclusive durations, critical path) to
// Sleuth's own execution.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	sleuth "github.com/sleuth-rca/sleuth"
	"github.com/sleuth-rca/sleuth/internal/cluster"
	"github.com/sleuth-rca/sleuth/internal/obs"
	"github.com/sleuth-rca/sleuth/internal/obs/alert"
	"github.com/sleuth-rca/sleuth/internal/otel"
	"github.com/sleuth-rca/sleuth/internal/store"
	"github.com/sleuth-rca/sleuth/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "rca":
		err = cmdRCA(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "ops":
		err = cmdOps(os.Args[2:])
	case "selftrace":
		err = cmdSelfTrace(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "traces":
		err = cmdTraces(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	case "alerts":
		err = cmdAlerts(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sleuthctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sleuthctl <train|rca|cluster|ops|selftrace|trace|traces|watch|alerts> [flags]")
	os.Exit(2)
}

func loadTraces(path string) ([]*trace.Trace, error) {
	st := store.New()
	skipped, err := st.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "sleuthctl: %s: skipped %d malformed span lines\n", path, skipped)
	}
	return st.Traces(store.Query{}), nil
}

// writeSelfTrace exports a pipeline self-trace as an OTLP document.
func writeSelfTrace(path string, tracer *sleuth.Tracer) error {
	if path == "" || tracer == nil {
		return nil
	}
	data, err := otel.EncodeOTLP(tracer.Spans())
	if err != nil {
		return fmt.Errorf("encoding self-trace: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("self-trace (%d spans) written to %s — replay with: sleuthctl selftrace -in %s\n",
		tracer.Len(), path, path)
	return nil
}

// dumpMetrics prints the process metrics-registry snapshot.
func dumpMetrics() {
	data, err := json.MarshalIndent(obs.Global().Snapshot(), "", "  ")
	if err != nil {
		return
	}
	fmt.Printf("metrics snapshot:\n%s\n", data)
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	tracesPath := fs.String("traces", "", "training spans JSONL (required)")
	modelPath := fs.String("model", "model.gob", "output model path")
	epochs := fs.Int("epochs", 5, "training epochs")
	lr := fs.Float64("lr", 1e-3, "learning rate")
	batch := fs.Int("batch", 1, "mini-batch size (traces per optimizer step)")
	workers := fs.Int("workers", 0, "gradient workers per batch (0 = GOMAXPROCS)")
	seed := fs.Uint64("seed", 1, "training seed")
	selftrace := fs.String("selftrace", "", "write the pipeline self-trace (OTLP JSON) here")
	metrics := fs.Bool("metrics", false, "print the metrics-registry snapshot after the run")
	debugAddr := fs.String("debug-addr", "", "serve /metrics and /debug/series on this address during the run (watch with: sleuthctl watch -addr <addr>)")
	_ = fs.Parse(args)
	if *tracesPath == "" {
		return fmt.Errorf("train: -traces is required")
	}
	if *metrics {
		obs.Enable()
	}
	if *debugAddr != "" {
		obs.Enable()
		obs.StartSampler(obs.EnvSampleInterval(time.Second))
		// Watch the run itself: the training pack (loss spike, grad-norm
		// blowup) evaluated on a short tick, surfaced on /debug/alerts
		// and in the `sleuthctl watch` banner.
		engine := alert.New(obs.Global(), alert.EnvTickInterval(5*time.Second))
		if err := engine.Add(alert.TrainingRules()...); err != nil {
			return err
		}
		engine.Register()
		engine.Start()
		defer engine.Stop()
		mux := http.NewServeMux()
		obs.Mount(mux)
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "sleuthctl: debug server: %v\n", err)
			}
		}()
	}
	var tracer *sleuth.Tracer
	if *selftrace != "" {
		tracer = sleuth.NewSelfTracer("")
	}
	collectSpan := tracer.Start("collect", nil)
	traces, err := loadTraces(*tracesPath)
	collectSpan.End()
	if err != nil {
		return err
	}
	fmt.Printf("training on %d traces...\n", len(traces))
	m, err := sleuth.Train(traces, sleuth.TrainConfig{
		Epochs: *epochs, LearningRate: *lr,
		BatchSize: *batch, Workers: *workers, Seed: *seed,
		Tracer: tracer,
	})
	if err != nil {
		return err
	}
	if err := sleuth.SaveModel(*modelPath, m); err != nil {
		return err
	}
	fmt.Printf("saved model (%d parameters, %d known operations) to %s\n",
		m.NumParams(), m.NormalsSize(), *modelPath)
	if err := writeSelfTrace(*selftrace, tracer); err != nil {
		return err
	}
	if *metrics {
		dumpMetrics()
	}
	return nil
}

func cmdRCA(args []string) error {
	fs := flag.NewFlagSet("rca", flag.ExitOnError)
	tracesPath := fs.String("traces", "", "anomalous spans JSONL (required)")
	normalPath := fs.String("normal", "", "normal spans JSONL for SLO calibration")
	modelPath := fs.String("model", "model.gob", "trained model path")
	selftrace := fs.String("selftrace", "", "write the pipeline self-trace (OTLP JSON) here")
	metrics := fs.Bool("metrics", false, "print the metrics-registry snapshot after the run")
	explain := fs.Bool("explain", false, "print the per-candidate pruning audit trail under each diagnosis")
	_ = fs.Parse(args)
	if *tracesPath == "" {
		return fmt.Errorf("rca: -traces is required")
	}
	if *metrics {
		obs.Enable()
	}
	var tracer *sleuth.Tracer
	if *selftrace != "" {
		tracer = sleuth.NewSelfTracer("")
	}
	m, err := sleuth.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	analyzer := sleuth.NewAnalyzer(m)
	analyzer.Tracer = tracer
	if *explain {
		analyzer.Localizer.Opts.Explain = true
	}
	if *normalPath != "" {
		normal, err := loadTraces(*normalPath)
		if err != nil {
			return err
		}
		m.SetNormals(normal)
		analyzer.SetSLOs(sleuth.SLOs(normal))
	}
	collectSpan := tracer.Start("collect", nil)
	traces, err := loadTraces(*tracesPath)
	collectSpan.End()
	if err != nil {
		return err
	}
	var anomalous []*trace.Trace
	for _, tr := range traces {
		if analyzer.IsAnomalous(tr) {
			anomalous = append(anomalous, tr)
		}
	}
	fmt.Printf("%d of %d traces anomalous\n", len(anomalous), len(traces))
	report := analyzer.Analyze(anomalous)
	fmt.Printf("%d diagnoses from %d GNN inferences:\n", len(report.Diagnoses), report.Inferences)
	for _, d := range report.Diagnoses {
		label := fmt.Sprintf("cluster %d", d.ClusterID)
		if d.ClusterID < 0 {
			label = "unclustered"
		}
		fmt.Printf("  %-12s traces=%-4d root causes: services=%v pods=%v nodes=%v\n",
			label, len(d.TraceIDs), d.Services, d.Pods, d.Nodes)
		if *explain {
			renderPruning(os.Stdout, "    ", d.PrunedCandidates, d.Pruning)
		}
	}
	if err := writeSelfTrace(*selftrace, tracer); err != nil {
		return err
	}
	if *metrics {
		dumpMetrics()
	}
	return nil
}

// cmdSelfTrace replays a pipeline self-trace through Sleuth's own trace
// machinery: the OTLP document is decoded with the same codec the
// collector uses, assembled with the same Assemble, and reported with the
// same exclusive-duration and critical-path analysis the RCA stage applies
// to application traces.
func cmdSelfTrace(args []string) error {
	fs := flag.NewFlagSet("selftrace", flag.ExitOnError)
	in := fs.String("in", "", "self-trace OTLP JSON written by -selftrace (required)")
	_ = fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("selftrace: -in is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	spans, err := otel.DecodeOTLP(data)
	if err != nil {
		return err
	}
	traces, skipped := trace.AssembleAll(spans)
	if skipped > 0 {
		fmt.Printf("warning: %d span groups did not assemble\n", skipped)
	}
	for _, tr := range traces {
		fmt.Printf("self-trace %s: %d stages, %dµs end-to-end\n",
			tr.TraceID, tr.Len(), tr.RootDuration())
		// Stage tree with durations; exclusive duration separates a
		// stage's own cost from its sub-stages'.
		var walk func(i, depth int)
		walk = func(i, depth int) {
			sp := tr.Spans[i]
			fmt.Printf("  %s%-*s %10dµs  (exclusive %dµs)\n",
				strings.Repeat("  ", depth), 28-2*depth, sp.Name,
				sp.Duration(), tr.ExclusiveDuration(i))
			for _, c := range tr.Children(i) {
				walk(c, depth+1)
			}
		}
		for _, r := range tr.Roots() {
			walk(r, 0)
		}
		var path []string
		for _, i := range tr.CriticalPath() {
			path = append(path, tr.Spans[i].Name)
		}
		fmt.Printf("  critical path: %s\n", strings.Join(path, " → "))
	}
	return nil
}

func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	tracesPath := fs.String("traces", "", "spans JSONL (required)")
	minSize := fs.Int("min-cluster-size", 4, "HDBSCAN min cluster size")
	minSamples := fs.Int("min-samples", 2, "HDBSCAN min samples")
	eps := fs.Float64("epsilon", 0.1, "HDBSCAN selection epsilon")
	dmax := fs.Int("dmax", cluster.DefaultMaxAncestors, "ancestor window of span identifiers")
	timing := fs.Bool("timing", false, "print per-stage wall clock (pairwise / hdbscan / medoids)")
	incremental := fs.Bool("incremental", false,
		"stream traces one at a time through the online clustering engine (bounded per-insert work, drift-triggered full reclusters) instead of one batch run")
	_ = fs.Parse(args)
	if *tracesPath == "" {
		return fmt.Errorf("cluster: -traces is required")
	}
	traces, err := loadTraces(*tracesPath)
	if err != nil {
		return err
	}
	if *incremental {
		return clusterIncremental(traces, cluster.Options{
			MinClusterSize: *minSize, MinSamples: *minSamples, SelectionEpsilon: *eps,
		}, *timing)
	}
	start := time.Now()
	sets := cluster.TraceSets(traces, *dmax)
	m := cluster.Pairwise(sets)
	pairwiseDone := time.Now()
	labels := cluster.HDBSCAN(m, cluster.Options{
		MinClusterSize: *minSize, MinSamples: *minSamples, SelectionEpsilon: *eps,
	})
	hdbscanDone := time.Now()
	medoids := cluster.Medoids(m, labels)
	if *timing {
		fmt.Printf("timing: sets+pairwise=%s hdbscan=%s medoids=%s matrix=%dB\n",
			pairwiseDone.Sub(start).Round(time.Microsecond),
			hdbscanDone.Sub(pairwiseDone).Round(time.Microsecond),
			time.Since(hdbscanDone).Round(time.Microsecond),
			m.Bytes())
	}
	fmt.Printf("clustered %d traces: %s\n", len(traces), cluster.Summary(labels))
	var ids []int
	for l := range medoids {
		ids = append(ids, l)
	}
	sort.Ints(ids)
	for _, l := range ids {
		rep := traces[medoids[l]]
		fmt.Printf("  cluster %d representative: %s (%d spans, %dµs, errors=%v)\n",
			l, rep.TraceID, rep.Len(), rep.RootDuration(), rep.HasError())
	}
	return nil
}

// clusterIncremental replays a trace file through the streaming engine as
// the model server would see it arrive, reporting drift-triggered rebuilds
// as they happen and the final shape.
func clusterIncremental(traces []*trace.Trace, opts cluster.Options, timing bool) error {
	inc := cluster.NewIncremental(opts, cluster.IncrementalOptions{})
	start := time.Now()
	var maxAdd time.Duration
	for _, tr := range traces {
		t0 := time.Now()
		res := inc.Add(tr)
		if d := time.Since(t0); d > maxAdd {
			maxAdd = d
		}
		if res.Rebuilt {
			st := inc.Stats()
			fmt.Printf("  rebuild at %d traces: %d clusters, %d noise\n",
				st.Points, st.Clusters, st.Noise)
		}
	}
	st := inc.Stats()
	if timing {
		fmt.Printf("timing: stream=%s worst-insert=%s matrix=%dB\n",
			time.Since(start).Round(time.Microsecond), maxAdd.Round(time.Microsecond), st.MatrixBytes)
	}
	fmt.Printf("streamed %d traces: %s (%d rebuilds, vocab %d)\n",
		len(traces), cluster.Summary(inc.Labels()), st.Rebuilds, st.VocabSize)
	return nil
}

func cmdOps(args []string) error {
	fs := flag.NewFlagSet("ops", flag.ExitOnError)
	tracesPath := fs.String("traces", "", "spans JSONL (required)")
	_ = fs.Parse(args)
	if *tracesPath == "" {
		return fmt.Errorf("ops: -traces is required")
	}
	st := store.New()
	skipped, err := st.LoadFile(*tracesPath)
	if err != nil {
		return err
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "sleuthctl: %s: skipped %d malformed span lines\n", *tracesPath, skipped)
	}
	fmt.Printf("%-60s %8s %10s %10s %10s %7s\n", "operation", "count", "median", "p95", "p99", "err%")
	for _, s := range st.OpSummaries() {
		op := strings.ReplaceAll(s.OpKey, "\x1f", " ")
		fmt.Printf("%-60s %8d %9.0fµ %9.0fµ %9.0fµ %6.2f%%\n",
			op, s.Count, s.Median, s.P95, s.P99, s.ErrorRate*100)
	}
	return nil
}
