// Command sleuthctl drives the Sleuth pipeline against stored traces:
//
//	sleuthctl train   -traces spans.jsonl -model model.gob [-epochs 5]
//	sleuthctl rca     -traces incident.jsonl -normal spans.jsonl -model model.gob
//	sleuthctl cluster -traces incident.jsonl
//	sleuthctl ops     -traces spans.jsonl      # per-operation statistics
//
// Trace files are span JSONL as written by tracegen or the collector.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	sleuth "github.com/sleuth-rca/sleuth"
	"github.com/sleuth-rca/sleuth/internal/cluster"
	"github.com/sleuth-rca/sleuth/internal/store"
	"github.com/sleuth-rca/sleuth/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "rca":
		err = cmdRCA(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "ops":
		err = cmdOps(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sleuthctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sleuthctl <train|rca|cluster|ops> [flags]")
	os.Exit(2)
}

func loadTraces(path string) ([]*trace.Trace, error) {
	st := store.New()
	if err := st.LoadFile(path); err != nil {
		return nil, err
	}
	return st.Traces(store.Query{}), nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	tracesPath := fs.String("traces", "", "training spans JSONL (required)")
	modelPath := fs.String("model", "model.gob", "output model path")
	epochs := fs.Int("epochs", 5, "training epochs")
	lr := fs.Float64("lr", 1e-3, "learning rate")
	batch := fs.Int("batch", 1, "mini-batch size (traces per optimizer step)")
	workers := fs.Int("workers", 0, "gradient workers per batch (0 = GOMAXPROCS)")
	seed := fs.Uint64("seed", 1, "training seed")
	_ = fs.Parse(args)
	if *tracesPath == "" {
		return fmt.Errorf("train: -traces is required")
	}
	traces, err := loadTraces(*tracesPath)
	if err != nil {
		return err
	}
	fmt.Printf("training on %d traces...\n", len(traces))
	m, err := sleuth.Train(traces, sleuth.TrainConfig{
		Epochs: *epochs, LearningRate: *lr,
		BatchSize: *batch, Workers: *workers, Seed: *seed,
	})
	if err != nil {
		return err
	}
	if err := sleuth.SaveModel(*modelPath, m); err != nil {
		return err
	}
	fmt.Printf("saved model (%d parameters, %d known operations) to %s\n",
		m.NumParams(), m.NormalsSize(), *modelPath)
	return nil
}

func cmdRCA(args []string) error {
	fs := flag.NewFlagSet("rca", flag.ExitOnError)
	tracesPath := fs.String("traces", "", "anomalous spans JSONL (required)")
	normalPath := fs.String("normal", "", "normal spans JSONL for SLO calibration")
	modelPath := fs.String("model", "model.gob", "trained model path")
	_ = fs.Parse(args)
	if *tracesPath == "" {
		return fmt.Errorf("rca: -traces is required")
	}
	m, err := sleuth.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	analyzer := sleuth.NewAnalyzer(m)
	if *normalPath != "" {
		normal, err := loadTraces(*normalPath)
		if err != nil {
			return err
		}
		m.SetNormals(normal)
		analyzer.SetSLOs(sleuth.SLOs(normal))
	}
	traces, err := loadTraces(*tracesPath)
	if err != nil {
		return err
	}
	var anomalous []*trace.Trace
	for _, tr := range traces {
		if analyzer.IsAnomalous(tr) {
			anomalous = append(anomalous, tr)
		}
	}
	fmt.Printf("%d of %d traces anomalous\n", len(anomalous), len(traces))
	report := analyzer.Analyze(anomalous)
	fmt.Printf("%d diagnoses from %d GNN inferences:\n", len(report.Diagnoses), report.Inferences)
	for _, d := range report.Diagnoses {
		label := fmt.Sprintf("cluster %d", d.ClusterID)
		if d.ClusterID < 0 {
			label = "unclustered"
		}
		fmt.Printf("  %-12s traces=%-4d root causes: services=%v pods=%v nodes=%v\n",
			label, len(d.TraceIDs), d.Services, d.Pods, d.Nodes)
	}
	return nil
}

func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	tracesPath := fs.String("traces", "", "spans JSONL (required)")
	minSize := fs.Int("min-cluster-size", 4, "HDBSCAN min cluster size")
	minSamples := fs.Int("min-samples", 2, "HDBSCAN min samples")
	eps := fs.Float64("epsilon", 0.1, "HDBSCAN selection epsilon")
	dmax := fs.Int("dmax", cluster.DefaultMaxAncestors, "ancestor window of span identifiers")
	_ = fs.Parse(args)
	if *tracesPath == "" {
		return fmt.Errorf("cluster: -traces is required")
	}
	traces, err := loadTraces(*tracesPath)
	if err != nil {
		return err
	}
	sets := cluster.TraceSets(traces, *dmax)
	m := cluster.Pairwise(sets)
	labels := cluster.HDBSCAN(m, cluster.Options{
		MinClusterSize: *minSize, MinSamples: *minSamples, SelectionEpsilon: *eps,
	})
	medoids := cluster.Medoids(m, labels)
	fmt.Printf("clustered %d traces: %s\n", len(traces), cluster.Summary(labels))
	var ids []int
	for l := range medoids {
		ids = append(ids, l)
	}
	sort.Ints(ids)
	for _, l := range ids {
		rep := traces[medoids[l]]
		fmt.Printf("  cluster %d representative: %s (%d spans, %dµs, errors=%v)\n",
			l, rep.TraceID, rep.Len(), rep.RootDuration(), rep.HasError())
	}
	return nil
}

func cmdOps(args []string) error {
	fs := flag.NewFlagSet("ops", flag.ExitOnError)
	tracesPath := fs.String("traces", "", "spans JSONL (required)")
	_ = fs.Parse(args)
	if *tracesPath == "" {
		return fmt.Errorf("ops: -traces is required")
	}
	st := store.New()
	if err := st.LoadFile(*tracesPath); err != nil {
		return err
	}
	fmt.Printf("%-60s %8s %10s %10s %10s %7s\n", "operation", "count", "median", "p95", "p99", "err%")
	for _, s := range st.OpSummaries() {
		op := strings.ReplaceAll(s.OpKey, "\x1f", " ")
		fmt.Printf("%-60s %8d %9.0fµ %9.0fµ %9.0fµ %6.2f%%\n",
			op, s.Count, s.Median, s.P95, s.P99, s.ErrorRate*100)
	}
	return nil
}
