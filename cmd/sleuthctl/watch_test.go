package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/sleuth-rca/sleuth/internal/obs"
)

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8); got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline = %q", got)
	}
	// Flat series renders at mid height, not blanks.
	if got := sparkline([]float64{5, 5, 5}, 3); got != "▅▅▅" {
		t.Errorf("flat sparkline = %q", got)
	}
	// Longer than width: only the tail is rendered.
	if got := sparkline([]float64{9, 9, 0, 8}, 2); got != "▁█" {
		t.Errorf("tail sparkline = %q", got)
	}
	// Shorter than width: padded to fixed width.
	if got := sparkline([]float64{1}, 4); len([]rune(got)) != 4 {
		t.Errorf("padded sparkline = %q (%d runes)", got, len([]rune(got)))
	}
	if got := sparkline(nil, 3); got != "   " {
		t.Errorf("empty sparkline = %q", got)
	}
}

func TestFmtValue(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		0.125:  "0.125",
		12500:  "12.5k",
		2.5e6:  "2.50M",
		3.21e9: "3.21G",
		-1.5e6: "-1.50M",
	}
	for in, want := range cases {
		if got := fmtValue(in); got != want {
			t.Errorf("fmtValue(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestRenderFrame(t *testing.T) {
	resp := obs.SeriesQueryResponse{
		WindowSec: 300,
		Series: map[string]obs.SeriesData{
			"core.train.epoch.loss": {
				Samples: []obs.Sample{{TS: 1, V: 4}, {TS: 2, V: 2}, {TS: 3, V: 1}},
				Stats:   obs.SeriesStats{Count: 3, Last: 1, Mean: 7.0 / 3, Rate: -1.5},
			},
			"collector.ingest.spans": {
				Samples: []obs.Sample{{TS: 1, V: 10}},
				Stats:   obs.SeriesStats{Count: 1, Last: 10, Mean: 10},
			},
		},
	}
	out := renderFrame(resp, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("frame has %d lines, want header + 2 series:\n%s", len(lines), out)
	}
	// Sorted by name: collector row before core row.
	if !strings.HasPrefix(lines[1], "collector.ingest.spans") ||
		!strings.HasPrefix(lines[2], "core.train.epoch.loss") {
		t.Errorf("rows not sorted by name:\n%s", out)
	}
	if !strings.Contains(lines[2], "█") || !strings.Contains(lines[2], "▁") {
		t.Errorf("loss row missing sparkline extremes: %q", lines[2])
	}
}

// TestCmdWatchAgainstLiveServer drives the full watch path against a real
// obs-mounted server: series discovery via the listing, the query, and a
// bounded number of polls.
func TestCmdWatchAgainstLiveServer(t *testing.T) {
	obs.Disable()
	obs.Enable()
	t.Cleanup(obs.Disable)
	s := obs.S("watch.test.series")
	for i := 0; i < 5; i++ {
		s.Append(float64(i))
	}
	mux := http.NewServeMux()
	obs.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if err := cmdWatch([]string{
		"-addr", srv.URL, "-n", "2", "-interval", "1ms", "-window", "1m",
	}); err != nil {
		t.Fatalf("cmdWatch: %v", err)
	}
	// Explicit series selection, scheme-less address.
	if err := cmdWatch([]string{
		"-addr", strings.TrimPrefix(srv.URL, "http://"),
		"-series", "watch.test.series", "-n", "1",
	}); err != nil {
		t.Fatalf("cmdWatch with -series: %v", err)
	}
}
