package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/sleuth-rca/sleuth/internal/rca"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// explainFixture covers every pruning rule once, in rank order.
func explainFixture() (pruned int, decisions []rca.PruneDecision) {
	decisions = []rca.PruneDecision{
		{Service: "coupon-service", Score: 10.11, Kept: true, Rule: rca.RuleTop, Statistic: 10.11, Threshold: 0},
		{Service: "cart", Score: 0.99, Kept: true, Rule: rca.RuleDuration, Statistic: 4.15, Threshold: 1},
		{Service: "wallet", Score: 0.41, Kept: true, Rule: rca.RuleError, Statistic: 2, Threshold: 1},
		{Service: "user", Score: 0.13, Kept: false, Rule: rca.RuleLowZ, Statistic: 0.21, Threshold: 1},
		{Service: "audit-log", Score: 0.02, Kept: false, Rule: rca.RuleUnreachable, Threshold: 1},
	}
	return 2, decisions
}

// TestRenderPruningGolden pins the `sleuthctl rca -explain` audit-trail
// format: one line per candidate with the deciding rule, statistic and
// threshold. Regenerate with `go test ./cmd/sleuthctl -run Golden -update`.
func TestRenderPruningGolden(t *testing.T) {
	pruned, decisions := explainFixture()
	var buf bytes.Buffer
	renderPruning(&buf, "    ", pruned, decisions)
	golden := filepath.Join("testdata", "explain.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("explain output drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestRenderPruningEmpty: no decisions (pruning off or Explain unset)
// must render nothing rather than an empty header.
func TestRenderPruningEmpty(t *testing.T) {
	var buf bytes.Buffer
	renderPruning(&buf, "    ", 0, nil)
	if buf.Len() != 0 {
		t.Fatalf("expected no output, got %q", buf.String())
	}
}
