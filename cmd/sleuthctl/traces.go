// sleuthctl trace / traces: query the tail-sampled self-trace rings that
// every obs-enabled component serves at /debug/traces. `traces` lists what
// the rings hold (newest or slowest first); `trace <id>` fetches one trace
// from every listed component, merges the spans — each process only holds
// the subtree it executed — and prints the joined distributed tree.

package main

import (
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"github.com/sleuth-rca/sleuth/internal/obs"
	"github.com/sleuth-rca/sleuth/internal/trace"
)

// debugAddrs splits the -addr list and normalises entries to base URLs.
func debugAddrs(addrs string) []string {
	var out []string
	for _, a := range strings.Split(addrs, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.HasPrefix(a, "http://") && !strings.HasPrefix(a, "https://") {
			a = "http://" + a
		}
		out = append(out, strings.TrimSuffix(a, "/"))
	}
	return out
}

func cmdTraces(args []string) error {
	fs := flag.NewFlagSet("traces", flag.ExitOnError)
	addr := fs.String("addr", "localhost:4318", "comma-separated component addresses to query")
	slowest := fs.Bool("slowest", false, "order by root duration instead of recency")
	n := fs.Int("n", 20, "max rows to print (0 = all)")
	_ = fs.Parse(args)
	client := &http.Client{Timeout: 5 * time.Second}
	var rows []obs.TraceSummary
	for _, base := range debugAddrs(*addr) {
		url := base + "/debug/traces"
		if *slowest {
			url += "?slowest=1"
		}
		var resp obs.TracesListResponse
		if err := fetchJSON(client, url, &resp); err != nil {
			fmt.Fprintf(flag.CommandLine.Output(), "sleuthctl: %v\n", err)
			continue
		}
		rows = append(rows, resp.Traces...)
	}
	if len(rows) == 0 {
		fmt.Println("no self-traces resident (is the component running with -obs?)")
		return nil
	}
	// Re-sort the merged listing: per-component order does not survive a
	// multi-address merge.
	if *slowest {
		sort.Slice(rows, func(i, j int) bool { return rows[i].DurationUS > rows[j].DurationUS })
	} else {
		sort.Slice(rows, func(i, j int) bool { return rows[i].StartUS > rows[j].StartUS })
	}
	if *n > 0 && len(rows) > *n {
		rows = rows[:*n]
	}
	fmt.Printf("%-32s  %-28s  %5s  %10s  %-5s  %s\n",
		"TRACE", "ROOT", "SPANS", "DURATION", "ERROR", "SERVICES")
	for _, r := range rows {
		errMark := ""
		if r.Error {
			errMark = "yes"
		}
		fmt.Printf("%-32s  %-28s  %5d  %8dµs  %-5s  %s\n",
			r.TraceID, r.Root, r.Spans, r.DurationUS, errMark,
			strings.Join(r.Services, ","))
	}
	fmt.Println("\ninspect one: sleuthctl trace <trace-id>")
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	addr := fs.String("addr", "localhost:4318",
		"comma-separated component addresses; spans found on each are merged into one tree")
	// Accept the trace ID before or after the flags: stdlib flag parsing
	// stops at the first positional argument, so `trace <id> -addr …`
	// would otherwise silently drop -addr.
	var id string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		id, args = args[0], args[1:]
	}
	_ = fs.Parse(args)
	if id == "" {
		id = fs.Arg(0)
	}
	if id == "" {
		return fmt.Errorf("trace: usage: sleuthctl trace [-addr host:port,host:port] <trace-id>")
	}
	client := &http.Client{Timeout: 5 * time.Second}
	seen := map[string]bool{}
	var spans []*trace.Span
	found := 0
	for _, base := range debugAddrs(*addr) {
		var part []*trace.Span
		if err := fetchJSON(client, base+"/debug/traces?id="+id, &part); err != nil {
			continue // absent from this component's ring is normal
		}
		found++
		for _, sp := range part {
			if !seen[sp.SpanID] {
				seen[sp.SpanID] = true
				spans = append(spans, sp)
			}
		}
	}
	if len(spans) == 0 {
		return fmt.Errorf("trace %s not found on %s (evicted, shed, or wrong address?)", id, *addr)
	}
	tr, err := trace.Assemble(spans)
	if err != nil {
		return fmt.Errorf("trace %s: %w", id, err)
	}
	fmt.Printf("trace %s: %d spans from %d component(s), %dµs end-to-end\n",
		tr.TraceID, tr.Len(), found, tr.RootDuration())
	printSpanTree(tr)
	return nil
}

// printSpanTree renders an assembled trace as an indented tree with
// per-span service, kind, duration and exclusive duration, followed by the
// critical path — the same machinery Sleuth applies to application traces,
// pointed at its own execution.
func printSpanTree(tr *trace.Trace) {
	var walk func(i, depth int)
	walk = func(i, depth int) {
		sp := tr.Spans[i]
		marks := ""
		if sp.Error {
			marks += " ERROR"
		}
		if rid := sp.Attrs["request.id"]; rid != "" {
			marks += " id=" + rid
		}
		pad := 40 - 2*depth - len(sp.Name)
		if pad < 1 {
			pad = 1
		}
		fmt.Printf("  %s%s%s%10dµs  (exclusive %dµs)  [%s/%s]%s\n",
			strings.Repeat("  ", depth), sp.Name, strings.Repeat(" ", pad),
			sp.Duration(), tr.ExclusiveDuration(i), sp.Service, sp.Kind, marks)
		for _, c := range tr.Children(i) {
			walk(c, depth+1)
		}
	}
	for _, r := range tr.Roots() {
		walk(r, 0)
	}
	var path []string
	for _, i := range tr.CriticalPath() {
		path = append(path, tr.Spans[i].Name)
	}
	fmt.Printf("  critical path: %s\n", strings.Join(path, " → "))
}
