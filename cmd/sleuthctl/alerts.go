package main

import (
	"flag"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/sleuth-rca/sleuth/internal/obs/alert"
)

// httpClient builds the short-timeout client the debug-surface commands
// share.
func httpClient() *http.Client { return &http.Client{Timeout: 10 * time.Second} }

// cmdAlerts fetches a server's /debug/alerts document and renders the
// watchdog state: one row per rule, firing first, with the evaluation
// value and the exemplar trace ID a firing alert links to (resolvable
// via `sleuthctl trace <id>`).
func cmdAlerts(args []string) error {
	fs := flag.NewFlagSet("alerts", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:4318", "base URL of a server exposing /debug/alerts")
	firingOnly := fs.Bool("firing", false, "show only firing and pending alerts")
	_ = fs.Parse(args)

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	var status alert.StatusResponse
	if err := fetchJSON(httpClient(), base+"/debug/alerts", &status); err != nil {
		return fmt.Errorf("alerts: %w", err)
	}
	if !status.Enabled {
		fmt.Println("watchdog disabled on", base)
		return nil
	}
	fmt.Printf("watchdog on %s: %d rules, %d firing, %d pending (tick %.0fs",
		base, status.Rules, status.Firing, status.Pending, status.IntervalSec)
	if status.LastTick > 0 {
		fmt.Printf(", last tick %s ago", time.Since(time.Unix(0, status.LastTick)).Round(time.Second))
	}
	fmt.Println(")")
	fmt.Printf("%-34s %-9s %-8s %-10s %12s  %s\n",
		"alert", "state", "severity", "kind", "value", "trace")
	for _, a := range status.Alerts {
		if *firingOnly && a.State != alert.StateFiring && a.State != alert.StatePending {
			continue
		}
		extra := a.TraceID
		if a.Kind == alert.KindDrift && (a.PSI > 0 || a.KS > 0) {
			extra = fmt.Sprintf("psi=%.3f ks=%.3f %s", a.PSI, a.KS, a.TraceID)
		}
		fmt.Printf("%-34s %-9s %-8s %-10s %12.4g  %s\n",
			a.Name, a.State, a.Severity, a.Kind, a.Value, strings.TrimSpace(extra))
	}
	return nil
}
