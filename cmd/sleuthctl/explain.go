package main

import (
	"fmt"
	"io"

	"github.com/sleuth-rca/sleuth/internal/rca"
)

// renderPruning writes the per-candidate kept/cut audit trail of one
// localisation under `sleuthctl rca -explain`: one line per candidate in
// rank order, with the deciding rule, the statistic it evaluated and the
// threshold it was held against.
func renderPruning(w io.Writer, indent string, pruned int, decisions []rca.PruneDecision) {
	if len(decisions) == 0 {
		return
	}
	fmt.Fprintf(w, "%spruning: kept %d/%d candidates\n", indent, len(decisions)-pruned, len(decisions))
	for _, d := range decisions {
		verdict := "cut "
		if d.Kept {
			verdict = "keep"
		}
		fmt.Fprintf(w, "%s  %s %-24s %s\n", indent, verdict, d.Service, ruleDetail(d))
	}
}

// ruleDetail renders a decision's evidence in rule-specific terms.
func ruleDetail(d rca.PruneDecision) string {
	switch d.Rule {
	case rca.RuleTop:
		return fmt.Sprintf("rule=top          score=%.2f (rank 0 always enters the loop)", d.Statistic)
	case rca.RuleError:
		return fmt.Sprintf("rule=error        exclusive-error spans=%.0f >= %.0f", d.Statistic, d.Threshold)
	case rca.RuleDuration:
		return fmt.Sprintf("rule=duration     z=%.2f >= %.2f", d.Statistic, d.Threshold)
	case rca.RuleLowZ:
		return fmt.Sprintf("rule=low-z        z=%.2f < %.2f", d.Statistic, d.Threshold)
	case rca.RuleUnreachable:
		return "rule=unreachable  no span on a synchronous path from the root"
	}
	return fmt.Sprintf("rule=%s", d.Rule)
}
