package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"github.com/sleuth-rca/sleuth/internal/obs"
	"github.com/sleuth-rca/sleuth/internal/obs/alert"
)

// alertBanner renders the firing/pending watchdog alerts as an
// inverse-video banner line (empty when nothing is active), with the
// exemplar trace ID attached so the operator can jump straight to
// `sleuthctl trace <id>`.
func alertBanner(status alert.StatusResponse) string {
	if status.Firing == 0 && status.Pending == 0 {
		return ""
	}
	var b strings.Builder
	for _, a := range status.Alerts {
		if a.State != alert.StateFiring && a.State != alert.StatePending {
			continue
		}
		marker := "\x1b[7;31m ALERT \x1b[0m" // inverse red for firing
		if a.State == alert.StatePending {
			marker = "\x1b[7;33m pend  \x1b[0m" // inverse yellow
		}
		fmt.Fprintf(&b, "%s %s (%s, value %.4g", marker, a.Name, a.Severity, a.Value)
		if a.TraceID != "" {
			fmt.Fprintf(&b, ", trace %s", a.TraceID)
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// sparkRunes is the 8-level block ramp used for trend rendering.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as a fixed-width block-character trend. Values
// are scaled to the min..max of the rendered tail; a flat series renders at
// mid height so it is visibly present rather than an empty row.
func sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return strings.Repeat(" ", width)
	}
	if len(values) > width {
		values = values[len(values)-width:]
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		level := len(sparkRunes) / 2
		if hi > lo {
			level = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[level])
	}
	for i := len(values); i < width; i++ {
		b.WriteByte(' ')
	}
	return b.String()
}

// fmtValue renders a sample value compactly: integers without decimals,
// large magnitudes in engineering shorthand.
func fmtValue(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// renderFrame formats one watch frame: a sparkline row per series, sorted
// by name, with last value and window stats.
func renderFrame(resp obs.SeriesQueryResponse, width int) string {
	names := make([]string, 0, len(resp.Series))
	for name := range resp.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %-*s %12s %12s %12s\n", "series", width, "trend", "last", "mean", "rate/s")
	for _, name := range names {
		data := resp.Series[name]
		values := make([]float64, len(data.Samples))
		for i, s := range data.Samples {
			values[i] = s.V
		}
		st := data.Stats
		fmt.Fprintf(&b, "%-42s %s %12s %12s %12s\n",
			name, sparkline(values, width), fmtValue(st.Last), fmtValue(st.Mean), fmtValue(st.Rate))
	}
	return b.String()
}

// fetchJSON GETs a URL and decodes the JSON body into out.
func fetchJSON(client *http.Client, rawURL string, out interface{}) error {
	resp, err := client.Get(rawURL)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", rawURL, resp.StatusCode)
	}
	return json.Unmarshal(body, out)
}

// cmdWatch polls a server's /debug/series endpoint and renders live
// sparkline trends — a terminal dashboard over the time-series telemetry
// exposed by the collector, model server, and `sleuthctl train -debug-addr`.
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:4318", "base URL of a server exposing /debug/series")
	seriesFlag := fs.String("series", "", "comma-separated series names (empty = every series the server has)")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	window := fs.Duration("window", 5*time.Minute, "stats window")
	count := fs.Int("n", 0, "number of polls, 0 = until interrupted")
	_ = fs.Parse(args)

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	for i := 0; *count <= 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		names := *seriesFlag
		if names == "" {
			var list obs.SeriesListResponse
			if err := fetchJSON(client, base+"/debug/series", &list); err != nil {
				return fmt.Errorf("watch: listing series: %w", err)
			}
			parts := make([]string, len(list.Series))
			for j, info := range list.Series {
				parts[j] = info.Name
			}
			names = strings.Join(parts, ",")
		}
		var resp obs.SeriesQueryResponse
		if names != "" {
			q := base + "/debug/series?name=" + url.QueryEscape(names) +
				"&window=" + url.QueryEscape(window.String())
			if err := fetchJSON(client, q, &resp); err != nil {
				return fmt.Errorf("watch: querying series: %w", err)
			}
		}
		// Firing-alert banner: best-effort poll of the watchdog state; a
		// server without /debug/alerts (or with the watchdog off) simply
		// shows no banner.
		var status alert.StatusResponse
		_ = fetchJSON(client, base+"/debug/alerts", &status)

		// Home the cursor and clear below it, then redraw the frame.
		fmt.Print("\x1b[H\x1b[2J")
		fmt.Printf("sleuthctl watch %s  window=%s  %s\n",
			base, window, time.Now().Format(time.TimeOnly))
		fmt.Print(alertBanner(status))
		fmt.Println()
		if len(resp.Series) == 0 {
			fmt.Println("no series yet — is the server running with observability enabled?")
			continue
		}
		fmt.Print(renderFrame(resp, 40))
	}
	return nil
}
