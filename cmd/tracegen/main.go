// Command tracegen simulates traffic against a generated application and
// writes the resulting traces as JSONL spans — the offline equivalent of
// the Kubernetes deployment plus collector pipeline. Optionally it injects
// a random chaos plan and reports the ground-truth root causes.
//
// Usage:
//
//	tracegen -app syn64.json -n 1000 -out spans.jsonl
//	tracegen -app syn64.json -n 200 -chaos -chaos-seed 7 -out incident.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/sleuth-rca/sleuth/internal/chaos"
	"github.com/sleuth-rca/sleuth/internal/sim"
	"github.com/sleuth-rca/sleuth/internal/store"
	"github.com/sleuth-rca/sleuth/internal/synth"
	"github.com/sleuth-rca/sleuth/internal/xrand"
)

func main() {
	var (
		appPath   = flag.String("app", "", "application JSON from synthgen (required)")
		n         = flag.Int("n", 100, "number of requests to simulate")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		firstID   = flag.Int("first", 0, "first request ID (controls determinism window)")
		out       = flag.String("out", "", "output spans JSONL path (required)")
		withChaos = flag.Bool("chaos", false, "inject a random fault plan")
		chaosSeed = flag.Uint64("chaos-seed", 1, "fault plan seed")
	)
	flag.Parse()
	if *appPath == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	app, err := synth.LoadJSON(*appPath)
	if err != nil {
		fatal(err)
	}
	s := sim.New(app, sim.DefaultOptions(*seed))

	var inj *chaos.Injector
	if *withChaos {
		plan := chaos.GeneratePlan(app, chaos.DefaultPlanParams(), xrand.New(*chaosSeed))
		inj = chaos.NewInjector(app, plan)
		fmt.Printf("injected %d faults:\n", len(plan.Faults))
		for _, f := range plan.Faults {
			fmt.Printf("  %s\n", f.String())
		}
	}
	results, err := s.RunWithInjector(*firstID, *n, inj)
	if err != nil {
		fatal(err)
	}
	st := store.New()
	errored := 0
	for _, r := range results {
		st.AddTrace(r.Trace)
		if r.Errored {
			errored++
		}
	}
	if err := st.SaveFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d traces (%d spans, %d with errors) to %s\n",
		st.TraceCount(), st.SpanCount(), errored, *out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
