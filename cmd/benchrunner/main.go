// Command benchrunner regenerates every table and figure of the paper's
// evaluation section against the simulated substrate.
//
// Usage:
//
//	benchrunner -exp all                 # everything at quick effort
//	benchrunner -exp table3 -full        # one experiment at paper-scale effort
//	benchrunner -exp fig1,fig5 -seed 7
//	benchrunner -exp all -benchout . -stamp 2026-08-06T00:00:00Z
//
// Experiments: fig1 fig3 table1 table3 fig5 fig6 fig7 fig8 ablation.
//
// With -benchout, every experiment additionally writes a machine-readable
// BENCH_<name>.json (op name, ns/op, allocs/op, bytes/op, timestamp from
// -stamp) into the given directory, so the performance trajectory of the
// pipeline accumulates across commits. `make bench` drives this.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/sleuth-rca/sleuth/internal/eval"
	"github.com/sleuth-rca/sleuth/internal/obs"
)

// benchResult is the machine-readable record of one experiment run,
// mirroring the fields of testing.B output so downstream tooling can treat
// both uniformly.
type benchResult struct {
	Op          string `json:"op"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	Timestamp   string `json:"timestamp"`
	Seed        uint64 `json:"seed"`
	Full        bool   `json:"full"`
}

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiments or 'all'")
		full     = flag.Bool("full", false, "paper-scale effort (slow)")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		benchout = flag.String("benchout", "", "directory for BENCH_<name>.json records (empty = off)")
		stamp    = flag.String("stamp", "", "timestamp recorded in BENCH_*.json (default: now, RFC 3339)")
		metrics  = flag.Bool("metrics", false, "enable the obs registry and print its snapshot at exit")
	)
	flag.Parse()

	if *metrics {
		obs.Enable()
	}
	if *stamp == "" {
		*stamp = time.Now().UTC().Format(time.RFC3339)
	}
	if *benchout != "" {
		if err := os.MkdirAll(*benchout, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: creating %s: %v\n", *benchout, err)
			os.Exit(1)
		}
	}

	effort := eval.QuickEffort(*seed)
	if *full {
		effort = eval.FullEffort(*seed)
	}

	selected := map[string]bool{}
	if *expFlag == "all" {
		for _, e := range []string{"fig1", "fig3", "table1", "table3", "fig5", "fig6", "fig7", "fig8", "instances", "ablation"} {
			selected[e] = true
		}
	} else {
		for _, e := range strings.Split(*expFlag, ",") {
			selected[strings.TrimSpace(e)] = true
		}
	}

	run := func(name, title string, fn func() (string, error)) {
		if !selected[name] {
			return
		}
		fmt.Printf("\n=== %s — %s ===\n", strings.ToUpper(name), title)
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		out, err := fn()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("(%s in %s)\n", name, elapsed.Round(time.Millisecond))
		if *benchout != "" {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			res := benchResult{
				Op:          name,
				NsPerOp:     elapsed.Nanoseconds(),
				AllocsPerOp: after.Mallocs - before.Mallocs,
				BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
				Timestamp:   *stamp,
				Seed:        *seed,
				Full:        *full,
			}
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: encoding %s record: %v\n", name, err)
				os.Exit(1)
			}
			path := filepath.Join(*benchout, "BENCH_"+name+".json")
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("(record written to %s)\n", path)
		}
	}

	run("table1", "benchmark specifications", func() (string, error) {
		t := eval.Table1(effort.Seed)
		return t.String(), nil
	})
	run("fig1", "n-sigma rule degradation with scale", func() (string, error) {
		rows, err := eval.Fig1(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderFig1(rows), nil
	})
	run("fig3", "span duration CDF", func() (string, error) {
		s, err := eval.Fig3(effort)
		if err != nil {
			return "", err
		}
		return s.String(), nil
	})
	run("table3", "RCA accuracy comparison", func() (string, error) {
		res, err := eval.Table3(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderTable3(res), nil
	})
	run("fig5", "training/inference scaling", func() (string, error) {
		rows, err := eval.Fig5(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderFig5(rows), nil
	})
	run("fig6", "service updates", func() (string, error) {
		points, err := eval.Fig6(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderFig6(points), nil
	})
	run("fig7", "transfer learning", func() (string, error) {
		points, err := eval.Fig7(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderFig7(points), nil
	})
	run("fig8", "semantic sensitivity", func() (string, error) {
		points, err := eval.Fig8(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderFig8(points), nil
	})
	run("instances", "instance-level (service/pod/node) accuracy", func() (string, error) {
		il, err := eval.InstanceTable(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderInstanceLevel(il), nil
	})
	run("ablation", "design-choice ablations", func() (string, error) {
		var b strings.Builder
		dmax, err := eval.AblationDmax(effort)
		if err != nil {
			return "", err
		}
		b.WriteString("d_max ancestor window:\n")
		b.WriteString(eval.RenderAblationDmax(dmax))
		win, err := eval.AblationClippedReLU(effort)
		if err != nil {
			return "", err
		}
		b.WriteString("\nEq. 2 aggregation window:\n")
		b.WriteString(eval.RenderAblationWindow(win))
		epsRows, err := eval.AblationEpsilon(effort)
		if err != nil {
			return "", err
		}
		b.WriteString("\nHDBSCAN selection epsilon:\n")
		b.WriteString(eval.RenderAblationEpsilon(epsRows))
		return b.String(), nil
	})

	if *metrics {
		if data, err := json.MarshalIndent(obs.Global().Snapshot(), "", "  "); err == nil {
			fmt.Printf("\nmetrics snapshot:\n%s\n", data)
		}
	}
}
