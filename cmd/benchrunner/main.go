// Command benchrunner regenerates every table and figure of the paper's
// evaluation section against the simulated substrate, and measures the
// pipeline's hot paths (training, pairwise distances, batched inference)
// as repeatable micro-experiments.
//
// Usage:
//
//	benchrunner -exp all                 # everything at quick effort
//	benchrunner -exp table3 -full        # one experiment at paper-scale effort
//	benchrunner -exp fig1,fig5 -seed 7
//	benchrunner -exp all -benchout . -stamp 2026-08-06T00:00:00Z
//	benchrunner -exp hot -benchout /tmp/now -baseline bench-records
//	benchrunner -exp train -cpuprofile cpu.out -memprofile mem.out
//
// Experiments: fig1 fig3 table1 table3 fig5 fig6 fig7 fig8 instances
// ablation, plus the hot paths train/pairwise/predict-batch/hdbscan/ingest/
// serve/rca ("hot" selects all seven; "cluster" is shorthand for the
// hdbscan clustering-pipeline experiment; "ingest" measures the staged
// streaming pipeline's spans/sec and the sharded store's abnormal-fetch
// flatness; "serve" is the closed-loop /score comparison of the legacy
// per-request path against the micro-batched server, with a hard ≥2×
// throughput / equal-or-better p99 acceptance check; "rca" compares the
// pre-rework per-call localisation loop against the incremental
// counterfactual session with and without candidate pruning, with hard
// set-identity and ≥2× ns/query acceptance checks).
//
// With -benchout, every experiment additionally writes a machine-readable
// BENCH_<name>.json (op name, ns/op, allocs/op, bytes/op, timestamp from
// -stamp) into the given directory, so the performance trajectory of the
// pipeline accumulates across commits. `make bench` drives this. With
// -baseline, each record is also diffed against the committed
// BENCH_<name>.json in the given directory and the per-benchmark ns/op and
// allocs/op deltas are printed (`make bench-compare`). -cpuprofile and
// -memprofile write pprof profiles covering the selected experiments, so
// kernel work is tuned from real profiles rather than guesswork.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	sleuth "github.com/sleuth-rca/sleuth"
	"github.com/sleuth-rca/sleuth/internal/chaos"
	"github.com/sleuth-rca/sleuth/internal/cluster"
	"github.com/sleuth-rca/sleuth/internal/core"
	"github.com/sleuth-rca/sleuth/internal/eval"
	"github.com/sleuth-rca/sleuth/internal/ingest"
	"github.com/sleuth-rca/sleuth/internal/modelserver"
	"github.com/sleuth-rca/sleuth/internal/obs"
	"github.com/sleuth-rca/sleuth/internal/rca"
	"github.com/sleuth-rca/sleuth/internal/sim"
	"github.com/sleuth-rca/sleuth/internal/stats"
	"github.com/sleuth-rca/sleuth/internal/store"
	"github.com/sleuth-rca/sleuth/internal/synth"
	"github.com/sleuth-rca/sleuth/internal/trace"
	"github.com/sleuth-rca/sleuth/internal/xrand"
)

// benchResult is the machine-readable record of one experiment run,
// mirroring the fields of testing.B output so downstream tooling can treat
// both uniformly.
type benchResult struct {
	Op          string `json:"op"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	Timestamp   string `json:"timestamp"`
	Seed        uint64 `json:"seed"`
	Full        bool   `json:"full"`
}

// recordName maps an experiment name to its BENCH_<name>.json filename
// component (dashes would be awkward in some downstream tooling).
func recordName(op string) string { return strings.ReplaceAll(op, "-", "_") }

// ingestCorpus builds pre-decoded span batches for the streaming-ingest
// experiment: nTraces traces of spansPerTrace spans, tracesPerBatch traces
// per Submit-sized batch, with every 100th trace carrying an error span so
// the sampler's always-keep rule and the store's error index stay on the
// measured paths.
func ingestCorpus(nTraces, spansPerTrace, tracesPerBatch int) [][]*trace.Span {
	var batches [][]*trace.Span
	batch := make([]*trace.Span, 0, tracesPerBatch*spansPerTrace)
	for t := 0; t < nTraces; t++ {
		id := fmt.Sprintf("trace-%08d", t)
		root := &trace.Span{
			TraceID: id, SpanID: id + "-s0", Service: "front", Name: "handle",
			Kind: trace.KindServer, Start: 0, End: int64(1000 + t%500), Error: t%100 == 0,
		}
		batch = append(batch, root)
		for s := 1; s < spansPerTrace; s++ {
			batch = append(batch, &trace.Span{
				TraceID: id, SpanID: fmt.Sprintf("%s-s%d", id, s), ParentID: root.SpanID,
				Service: "backend", Name: "query", Kind: trace.KindClient,
				Start: int64(10 * s), End: int64(10*s + 100),
			})
		}
		if (t+1)%tracesPerBatch == 0 {
			batches = append(batches, batch)
			batch = make([]*trace.Span, 0, tracesPerBatch*spansPerTrace)
		}
	}
	if len(batch) > 0 {
		batches = append(batches, batch)
	}
	return batches
}

// pctDelta returns the relative change from base to now in percent.
func pctDelta(base, now float64) float64 {
	if base == 0 {
		return 0
	}
	return (now - base) / base * 100
}

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiments, 'all', or 'hot'")
		full       = flag.Bool("full", false, "paper-scale effort (slow)")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		benchout   = flag.String("benchout", "", "directory for BENCH_<name>.json records (empty = off)")
		stamp      = flag.String("stamp", "", "timestamp recorded in BENCH_*.json (default: now, RFC 3339)")
		metrics    = flag.Bool("metrics", false, "enable the obs registry and print its snapshot at exit")
		baseline   = flag.String("baseline", "", "directory with baseline BENCH_<name>.json records to diff against")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments")
		memprofile = flag.String("memprofile", "", "write an allocation profile at exit")
	)
	flag.Parse()

	if *metrics {
		obs.Enable()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: creating %s: %v\n", *cpuprofile, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: creating %s: %v\n", *memprofile, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: writing alloc profile: %v\n", err)
			}
		}()
	}
	if *stamp == "" {
		*stamp = time.Now().UTC().Format(time.RFC3339)
	}
	if *benchout != "" {
		if err := os.MkdirAll(*benchout, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: creating %s: %v\n", *benchout, err)
			os.Exit(1)
		}
	}

	effort := eval.QuickEffort(*seed)
	if *full {
		effort = eval.FullEffort(*seed)
	}

	selected := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		switch e = strings.TrimSpace(e); e {
		case "all":
			for _, x := range []string{"fig1", "fig3", "table1", "table3", "fig5", "fig6", "fig7", "fig8", "instances", "ablation", "train", "pairwise", "predict-batch", "hdbscan", "ingest", "serve", "rca"} {
				selected[x] = true
			}
		case "hot":
			for _, x := range []string{"train", "pairwise", "predict-batch", "hdbscan", "ingest", "serve", "rca"} {
				selected[x] = true
			}
		case "cluster":
			selected["hdbscan"] = true
		default:
			selected[e] = true
		}
	}

	// record persists one benchResult and, with -baseline, prints the
	// per-benchmark ns/op and allocs/op deltas against the committed record.
	record := func(res benchResult) {
		if *baseline != "" {
			path := filepath.Join(*baseline, "BENCH_"+recordName(res.Op)+".json")
			if data, err := os.ReadFile(path); err == nil {
				var base benchResult
				if err := json.Unmarshal(data, &base); err == nil {
					fmt.Printf("vs baseline (%s):\n", base.Timestamp)
					fmt.Printf("  ns/op     %12d -> %12d  (%+.1f%%)\n",
						base.NsPerOp, res.NsPerOp, pctDelta(float64(base.NsPerOp), float64(res.NsPerOp)))
					fmt.Printf("  allocs/op %12d -> %12d  (%+.1f%%)\n",
						base.AllocsPerOp, res.AllocsPerOp, pctDelta(float64(base.AllocsPerOp), float64(res.AllocsPerOp)))
					fmt.Printf("  bytes/op  %12d -> %12d  (%+.1f%%)\n",
						base.BytesPerOp, res.BytesPerOp, pctDelta(float64(base.BytesPerOp), float64(res.BytesPerOp)))
				}
			} else {
				fmt.Printf("(no baseline record at %s)\n", path)
			}
		}
		if *benchout == "" {
			return
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: encoding %s record: %v\n", res.Op, err)
			os.Exit(1)
		}
		path := filepath.Join(*benchout, "BENCH_"+recordName(res.Op)+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("(record written to %s)\n", path)
	}

	run := func(name, title string, fn func() (string, error)) {
		if !selected[name] {
			return
		}
		fmt.Printf("\n=== %s — %s ===\n", strings.ToUpper(name), title)
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		out, err := fn()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("(%s in %s)\n", name, elapsed.Round(time.Millisecond))
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		record(benchResult{
			Op:          name,
			NsPerOp:     elapsed.Nanoseconds(),
			AllocsPerOp: after.Mallocs - before.Mallocs,
			BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
			Timestamp:   *stamp,
			Seed:        *seed,
			Full:        *full,
		})
	}

	// runHot measures fn over iters iterations with setup excluded: a GC
	// fence before the loop keeps leftover garbage from the setup phase out
	// of the per-iteration numbers.
	runHot := func(name, title string, iters int, setup func() (func(), error)) {
		if !selected[name] {
			return
		}
		fmt.Printf("\n=== %s — %s ===\n", strings.ToUpper(name), title)
		fn, err := setup()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", name, err)
			os.Exit(1)
		}
		fn() // warm caches (embedder registry, lazy tensors) outside the window
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		res := benchResult{
			Op:          name,
			NsPerOp:     elapsed.Nanoseconds() / int64(iters),
			AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(iters),
			BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(iters),
			Timestamp:   *stamp,
			Seed:        *seed,
			Full:        *full,
		}
		fmt.Printf("%d iterations: %d ns/op, %d allocs/op, %d B/op\n",
			iters, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		record(res)
	}

	run("table1", "benchmark specifications", func() (string, error) {
		t := eval.Table1(effort.Seed)
		return t.String(), nil
	})
	run("fig1", "n-sigma rule degradation with scale", func() (string, error) {
		rows, err := eval.Fig1(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderFig1(rows), nil
	})
	run("fig3", "span duration CDF", func() (string, error) {
		s, err := eval.Fig3(effort)
		if err != nil {
			return "", err
		}
		return s.String(), nil
	})
	run("table3", "RCA accuracy comparison", func() (string, error) {
		res, err := eval.Table3(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderTable3(res), nil
	})
	run("fig5", "training/inference scaling", func() (string, error) {
		rows, err := eval.Fig5(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderFig5(rows), nil
	})
	run("fig6", "service updates", func() (string, error) {
		points, err := eval.Fig6(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderFig6(points), nil
	})
	run("fig7", "transfer learning", func() (string, error) {
		points, err := eval.Fig7(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderFig7(points), nil
	})
	run("fig8", "semantic sensitivity", func() (string, error) {
		points, err := eval.Fig8(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderFig8(points), nil
	})
	run("instances", "instance-level (service/pod/node) accuracy", func() (string, error) {
		il, err := eval.InstanceTable(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderInstanceLevel(il), nil
	})
	// Hot-path micro-experiments: the three paths the training and
	// clustering engines spend their time on, sized like the in-tree Go
	// benchmarks so records are comparable across commits.
	runHot("train", "data-parallel mini-batch training (64 traces, batch 32, 4 workers)", 3, func() (func(), error) {
		app := sleuth.NewSyntheticApp(64, *seed)
		world := sleuth.NewWorld(app, *seed)
		traces, err := world.SimulateNormal(64)
		if err != nil {
			return nil, err
		}
		return func() {
			if _, err := sleuth.Train(traces, sleuth.TrainConfig{
				Epochs: 1, BatchSize: 32, Workers: 4, Seed: *seed,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: train: %v\n", err)
				os.Exit(1)
			}
		}, nil
	})
	runHot("pairwise", "pairwise weighted-Jaccard distance matrix (256 traces)", 10, func() (func(), error) {
		app := sleuth.NewSyntheticApp(64, *seed)
		world := sleuth.NewWorld(app, *seed)
		traces, err := world.SimulateNormal(256)
		if err != nil {
			return nil, err
		}
		sets := cluster.TraceSets(traces, cluster.DefaultMaxAncestors)
		return func() { _ = cluster.Pairwise(sets) }, nil
	})
	runHot("hdbscan", "HDBSCAN pipeline: core distances + MST + condense + select + medoids (2048 traces)", 3, func() (func(), error) {
		app := sleuth.NewSyntheticApp(64, *seed)
		world := sleuth.NewWorld(app, *seed)
		traces, err := world.SimulateNormal(2048)
		if err != nil {
			return nil, err
		}
		sets := cluster.TraceSets(traces, cluster.DefaultMaxAncestors)
		m := cluster.Pairwise(sets)
		opts := cluster.DefaultOptions()
		return func() {
			labels := cluster.HDBSCAN(m, opts)
			_ = cluster.Medoids(m, labels)
		}, nil
	})
	runHot("predict-batch", "batched inference (256 traces, GOMAXPROCS workers)", 5, func() (func(), error) {
		app := sleuth.NewSyntheticApp(64, *seed)
		world := sleuth.NewWorld(app, *seed)
		traces, err := world.SimulateNormal(256)
		if err != nil {
			return nil, err
		}
		model, err := sleuth.Train(traces[:64], sleuth.TrainConfig{Epochs: 1, BatchSize: 32, Seed: *seed})
		if err != nil {
			return nil, err
		}
		return func() { _, _ = model.PredictBatch(traces, 0) }, nil
	})

	// The streaming-ingest experiment is hand-rolled rather than a runHot
	// call: besides ns/op it reports spans/sec through the full pipeline
	// (the paper-scale number) and the abnormal-fetch flatness check
	// (sharded error-trace scans at 1× and 10× corpus).
	if selected["ingest"] {
		fmt.Printf("\n=== INGEST — staged streaming ingest: submit → concentrate → tail-sample → write ===\n")
		nTraces := 20000
		iters := 5
		if *full {
			nTraces, iters = 100000, 3
		}
		const spansPerTrace, tracesPerBatch = 8, 256
		batches := ingestCorpus(nTraces, spansPerTrace, tracesPerBatch)
		runIngest := func() {
			st := store.New()
			p := ingest.NewPipeline(st, ingest.Config{
				SampleRate: 0.1, TraceTTL: -1, BaselineRefresh: -1,
				QueueSize: len(batches), // measure throughput, not drops
			})
			for _, b := range batches {
				p.Submit(b)
			}
			p.Stop()
		}
		runIngest() // warm outside the window
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			runIngest()
		}
		elapsed := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		spans := nTraces * spansPerTrace
		res := benchResult{
			Op:          "ingest",
			NsPerOp:     elapsed.Nanoseconds() / int64(iters),
			AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(iters),
			BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(iters),
			Timestamp:   *stamp,
			Seed:        *seed,
			Full:        *full,
		}
		fmt.Printf("%d iterations × %d spans (sample 0.1): %d ns/op, %d allocs/op, %d B/op\n",
			iters, spans, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		fmt.Printf("throughput: %.2fM spans/sec (%d ns/span)\n",
			float64(spans*iters)/elapsed.Seconds()/1e6, res.NsPerOp/int64(spans))

		// Abnormal-fetch flatness: with error traces spread uniformly, a
		// limited OnlyErrors scan touches ~Limit/error-rate traces whatever
		// the corpus holds, so sharded latency must stay flat as the store
		// grows 10×.
		fmt.Printf("abnormal-fetch (OnlyErrors, Limit 100) vs corpus size:\n")
		var lat [2]time.Duration
		for i, n := range []int{nTraces, 10 * nTraces} {
			st := store.NewSharded(store.DefaultShards())
			for _, b := range ingestCorpus(n, 2, tracesPerBatch) {
				st.AddSpans(b)
			}
			q := store.Query{OnlyErrors: true, Limit: 100}
			if got := len(st.Traces(q)); got != 100 {
				fmt.Fprintf(os.Stderr, "benchrunner: ingest: abnormal fetch returned %d traces\n", got)
				os.Exit(1)
			}
			runtime.GC() // keep corpus-build garbage out of the timings
			best := time.Duration(1<<63 - 1)
			for rep := 0; rep < 5; rep++ {
				qs := time.Now()
				_ = st.Traces(q)
				if d := time.Since(qs); d < best {
					best = d
				}
			}
			lat[i] = best
			fmt.Printf("  %8d traces: %s\n", n, best.Round(time.Microsecond))
		}
		fmt.Printf("  10× corpus latency ratio: %.2fx\n", float64(lat[1])/float64(lat[0]))
		record(res)
	}

	// The serve experiment is closed-loop rather than a runHot call: 8
	// concurrent clients hammer an in-process model server and three arms
	// are compared — the pre-rework path (per-request gob load from disk +
	// one forward for predictions and another for the loss, reproduced
	// inline), the reworked single-pass path with micro-batching disabled,
	// and the full deadline-aware micro-batched path. The acceptance bar is
	// hard: batched must deliver ≥2× the legacy throughput at an
	// equal-or-better p99, or the run fails.
	if selected["serve"] {
		fmt.Printf("\n=== SERVE — closed-loop /score: legacy vs single-pass vs micro-batched (8 clients) ===\n")
		dir, err := os.MkdirTemp("", "benchserve")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: serve: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		reg, err := modelserver.Open(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: serve: %v\n", err)
			os.Exit(1)
		}
		app := sleuth.NewSyntheticApp(16, *seed)
		world := sleuth.NewWorld(app, *seed)
		traces, err := world.SimulateNormal(36)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: serve: %v\n", err)
			os.Exit(1)
		}
		model, err := sleuth.Train(traces[:20], sleuth.TrainConfig{Epochs: 1, BatchSize: 32, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: serve: %v\n", err)
			os.Exit(1)
		}
		if _, err := reg.Publish("prod", model, "synthetic-16", nil); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: serve: %v\n", err)
			os.Exit(1)
		}
		query := traces[20:]

		const clients = 8
		rounds := 40
		if *full {
			rounds = 160
		}
		// Pre-marshalled 2-trace request bodies, one per client.
		payloads := make([][]byte, clients)
		for c := range payloads {
			var body modelserver.ScoreRequest
			for _, tr := range query[(c*2)%len(query) : (c*2)%len(query)+2] {
				body.Spans = append(body.Spans, tr.Spans...)
			}
			payloads[c], _ = json.Marshal(body)
		}
		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}

		// drive runs the closed loop against one arm and reports throughput
		// plus the latency distribution's p50/p99.
		drive := func(url string, rounds int) (thr float64, p50, p99 time.Duration) {
			lat := make([]time.Duration, 0, clients*rounds)
			var mu sync.Mutex
			var wg sync.WaitGroup
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						qs := time.Now()
						resp, err := client.Post(url+"/models/prod/latest/score", "application/json", bytes.NewReader(payloads[c]))
						if err != nil {
							fmt.Fprintf(os.Stderr, "benchrunner: serve: %v\n", err)
							os.Exit(1)
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							fmt.Fprintf(os.Stderr, "benchrunner: serve: status %d\n", resp.StatusCode)
							os.Exit(1)
						}
						d := time.Since(qs)
						mu.Lock()
						lat = append(lat, d)
						mu.Unlock()
					}
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start)
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			return float64(len(lat)) / elapsed.Seconds(), lat[len(lat)/2], lat[len(lat)*99/100]
		}

		legacySrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			// The pre-rework serving path, inlined: load the gob from disk
			// on every request, run the GNN once for predictions and AGAIN
			// for the loss.
			m, _, err := reg.Latest("prod")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			var body modelserver.ScoreRequest
			if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			trs, skipped := trace.AssembleAll(body.Spans)
			sort.Slice(trs, func(i, j int) bool { return trs[i].TraceID < trs[j].TraceID })
			resp := modelserver.ScoreResponse{Results: make([]modelserver.ScoreResult, len(trs)), Skipped: skipped}
			durs, errProbs := m.PredictBatch(trs, 0)
			for i, tr := range trs {
				resp.Results[i] = modelserver.ScoreResult{TraceID: tr.TraceID, DurScaled: durs[i], ErrProb: errProbs[i]}
			}
			resp.MeanLoss = m.MeanLoss(trs)
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(resp)
		}))
		defer legacySrv.Close()
		soloSrv := httptest.NewServer((&modelserver.Server{
			Registry: reg,
			Serve:    modelserver.ServeConfig{Batch: 1},
		}).Handler())
		defer soloSrv.Close()
		batchedSrv := httptest.NewServer((&modelserver.Server{
			Registry: reg,
			Serve:    modelserver.ServeConfig{Batch: 16, Wait: time.Millisecond},
		}).Handler())
		defer batchedSrv.Close()

		// Warm every arm (connections, model cache, arena pool) before
		// measuring, then measure legacy → single-pass → batched.
		for _, u := range []string{legacySrv.URL, soloSrv.URL, batchedSrv.URL} {
			drive(u, rounds/4+1)
		}
		legacyThr, legacyP50, legacyP99 := drive(legacySrv.URL, rounds)
		soloThr, soloP50, soloP99 := drive(soloSrv.URL, rounds)
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		batchedThr, batchedP50, batchedP99 := drive(batchedSrv.URL, rounds)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)

		fmt.Printf("  legacy      %8.1f req/s   p50 %-10s p99 %s\n", legacyThr, legacyP50.Round(time.Microsecond), legacyP99.Round(time.Microsecond))
		fmt.Printf("  single-pass %8.1f req/s   p50 %-10s p99 %s\n", soloThr, soloP50.Round(time.Microsecond), soloP99.Round(time.Microsecond))
		fmt.Printf("  batched     %8.1f req/s   p50 %-10s p99 %s\n", batchedThr, batchedP50.Round(time.Microsecond), batchedP99.Round(time.Microsecond))
		fmt.Printf("batched vs legacy: %.2fx throughput, p99 %s vs %s\n",
			batchedThr/legacyThr, batchedP99.Round(time.Microsecond), legacyP99.Round(time.Microsecond))
		if batchedThr < 2*legacyThr || batchedP99 > legacyP99 {
			fmt.Fprintf(os.Stderr, "benchrunner: serve: batched must be >=2x legacy throughput at equal-or-better p99 (got %.2fx, p99 %v vs %v)\n",
				batchedThr/legacyThr, batchedP99, legacyP99)
			os.Exit(1)
		}
		requests := uint64(clients * rounds)
		record(benchResult{
			Op:          "serve",
			NsPerOp:     int64(1e9 / batchedThr),
			AllocsPerOp: (after.Mallocs - before.Mallocs) / requests,
			BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / requests,
			Timestamp:   *stamp,
			Seed:        *seed,
			Full:        *full,
		})
	}

	// The rca experiment compares three localisation engines on the trigger
	// mix a deployed localizer sees against a Synthetic-256 app: the
	// pre-rework per-call counterfactual loop (one encode + full GNN forward
	// per restoration question), the incremental counterfactual session with
	// pruning off, and the shipped default (session + candidate pruning).
	// Half the queries are SLO violations from random chaos plans, half are
	// fault-free tail-latency violations — the latter exhaust the whole
	// candidate loop and are where the incremental engine's cached forwards
	// pay off. Acceptance is hard on both axes: legacy and session must
	// predict identical service sets on every query (the engine is
	// bit-identical by construction), and the default engine must run ≥2×
	// faster than legacy per query, or the run fails.
	if selected["rca"] {
		fmt.Printf("\n=== RCA — localisation: per-call loop vs incremental session vs session+pruning (Synthetic-256) ===\n")
		app := synth.Synthetic(256, *seed)
		simr := sim.New(app, sim.DefaultOptions(*seed))
		normalRes, err := simr.Run(0, 80)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: rca: %v\n", err)
			os.Exit(1)
		}
		normal := sim.Traces(normalRes)
		mixed := append([]*trace.Trace{}, normal...)
		for b := 0; b < 6; b++ {
			plan := chaos.GeneratePlan(app, chaos.DefaultPlanParams(), xrand.New(*seed+uint64(100+b)))
			res, err := simr.RunWithInjector(1000+b*10, 8, chaos.NewInjector(app, plan))
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: rca: %v\n", err)
				os.Exit(1)
			}
			mixed = append(mixed, sim.Traces(res)...)
		}
		model := core.NewModel(core.Config{EmbeddingDim: 8, Hidden: 24, Seed: *seed})
		if _, err := model.Train(mixed, core.TrainOptions{Epochs: 3, LearningRate: 3e-3, Seed: *seed}); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: rca: %v\n", err)
			os.Exit(1)
		}
		model.SetNormals(normal)
		var durs []float64
		for _, r := range normalRes {
			durs = append(durs, float64(r.Duration))
		}
		slo := stats.Percentile(durs, 95)

		// Query workload, mirroring internal/rca's benchQueries: half
		// single-incident chaos violations (the loop usually normalises
		// after restoring the true root), half from a wide-blast plan that
		// faults more services than MaxCandidates — the cascading-outage
		// case where no affordable restoration subset clears every error and
		// the candidate loop runs to exhaustion.
		const nQueries = 32
		var queries []*trace.Trace
		for p := 0; len(queries) < nQueries/2 && p < nQueries*8; p++ {
			plan := chaos.GeneratePlan(app, chaos.DefaultPlanParams(), xrand.New(*seed+uint64(500+p)))
			for id := 0; id < 4 && len(queries) < nQueries/2; id++ {
				sample, err := simr.SimulateWithTruth(p*10+id, plan)
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchrunner: rca: %v\n", err)
					os.Exit(1)
				}
				if float64(sample.Result.Duration) > slo || sample.Result.Errored {
					queries = append(queries, sample.Result.Trace)
				}
			}
		}
		wideWant := len(app.Services) / 2
		if min := rca.DefaultOptions().MaxCandidates + 4; wideWant < min {
			wideWant = min
		}
		wideStep := len(app.Services) / wideWant
		if wideStep < 1 {
			wideStep = 1
		}
		var wideFaults []chaos.Fault
		for svc := 0; svc < len(app.Services) && len(wideFaults) < wideWant; svc += wideStep {
			wideFaults = append(wideFaults, chaos.Fault{
				Type: chaos.FaultCPU, Level: chaos.LevelContainer,
				Target: app.Services[svc].Name, SlowFactor: 3, ErrorProb: 0.9,
			})
		}
		widePlan := chaos.NewPlan(app, wideFaults...)
		for id := 2000; len(queries) < nQueries && id < 2000+nQueries*20; id++ {
			sample, err := simr.SimulateWithTruth(id, widePlan)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: rca: %v\n", err)
				os.Exit(1)
			}
			if float64(sample.Result.Duration) > slo || sample.Result.Errored {
				queries = append(queries, sample.Result.Trace)
			}
		}
		if len(queries) < nQueries {
			fmt.Fprintf(os.Stderr, "benchrunner: rca: only %d/%d SLO-violating queries found\n", len(queries), nQueries)
			os.Exit(1)
		}

		prunedOpts := rca.DefaultOptions()
		prunedOpts.Prune = true
		unprunedOpts := prunedOpts
		unprunedOpts.Prune = false
		arms := []struct {
			name     string
			localize func(tr *trace.Trace) []string
		}{
			{"legacy", func(tr *trace.Trace) []string {
				return rca.NewLocalizer(model, unprunedOpts).LocalizeReference(tr, slo).Services
			}},
			{"session", func(tr *trace.Trace) []string {
				return rca.NewLocalizer(model, unprunedOpts).Localize(tr, slo)
			}},
			{"pruned", func(tr *trace.Trace) []string {
				return rca.NewLocalizer(model, prunedOpts).Localize(tr, slo)
			}},
		}

		rounds := 5
		if *full {
			rounds = 20
		}
		sets := make([][][]string, len(arms))
		ns := make([]int64, len(arms))
		var prunedAllocs, prunedBytes uint64
		for ai, arm := range arms {
			for _, q := range queries { // warm arena pools and model caches
				_ = arm.localize(q)
			}
			runtime.GC()
			var before runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			for r := 0; r < rounds; r++ {
				for qi, q := range queries {
					pred := arm.localize(q)
					if r == 0 {
						if sets[ai] == nil {
							sets[ai] = make([][]string, len(queries))
						}
						sets[ai][qi] = pred
					}
				}
			}
			elapsed := time.Since(start)
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			n := int64(rounds * len(queries))
			ns[ai] = elapsed.Nanoseconds() / n
			if arm.name == "pruned" {
				prunedAllocs = (after.Mallocs - before.Mallocs) / uint64(n)
				prunedBytes = (after.TotalAlloc - before.TotalAlloc) / uint64(n)
			}
			fmt.Printf("  %-8s %10d ns/query\n", arm.name, ns[ai])
		}

		equal := func(a, b []string) bool {
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		}
		for qi := range queries {
			if !equal(sets[0][qi], sets[1][qi]) {
				fmt.Fprintf(os.Stderr, "benchrunner: rca: session diverged from legacy on query %d: %v != %v\n",
					qi, sets[1][qi], sets[0][qi])
				os.Exit(1)
			}
		}
		agree := 0
		for qi := range queries {
			if equal(sets[0][qi], sets[2][qi]) {
				agree++
			}
		}
		speedup := float64(ns[0]) / float64(ns[2])
		fmt.Printf("pruned+session vs legacy: %.2fx ns/query; session==legacy sets on %d/%d; pruned agreement %d/%d\n",
			speedup, len(queries), len(queries), agree, len(queries))
		if speedup < 2 {
			fmt.Fprintf(os.Stderr, "benchrunner: rca: pruned+session must be >=2x legacy ns/query (got %.2fx)\n", speedup)
			os.Exit(1)
		}
		record(benchResult{
			Op:          "localize",
			NsPerOp:     ns[2],
			AllocsPerOp: prunedAllocs,
			BytesPerOp:  prunedBytes,
			Timestamp:   *stamp,
			Seed:        *seed,
			Full:        *full,
		})
	}

	run("ablation", "design-choice ablations", func() (string, error) {
		var b strings.Builder
		dmax, err := eval.AblationDmax(effort)
		if err != nil {
			return "", err
		}
		b.WriteString("d_max ancestor window:\n")
		b.WriteString(eval.RenderAblationDmax(dmax))
		win, err := eval.AblationClippedReLU(effort)
		if err != nil {
			return "", err
		}
		b.WriteString("\nEq. 2 aggregation window:\n")
		b.WriteString(eval.RenderAblationWindow(win))
		epsRows, err := eval.AblationEpsilon(effort)
		if err != nil {
			return "", err
		}
		b.WriteString("\nHDBSCAN selection epsilon:\n")
		b.WriteString(eval.RenderAblationEpsilon(epsRows))
		return b.String(), nil
	})

	if *metrics {
		if data, err := json.MarshalIndent(obs.Global().Snapshot(), "", "  "); err == nil {
			fmt.Printf("\nmetrics snapshot:\n%s\n", data)
		}
	}
}
