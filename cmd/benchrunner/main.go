// Command benchrunner regenerates every table and figure of the paper's
// evaluation section against the simulated substrate.
//
// Usage:
//
//	benchrunner -exp all                 # everything at quick effort
//	benchrunner -exp table3 -full        # one experiment at paper-scale effort
//	benchrunner -exp fig1,fig5 -seed 7
//
// Experiments: fig1 fig3 table1 table3 fig5 fig6 fig7 fig8 ablation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/sleuth-rca/sleuth/internal/eval"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiments or 'all'")
		full    = flag.Bool("full", false, "paper-scale effort (slow)")
		seed    = flag.Uint64("seed", 1, "experiment seed")
	)
	flag.Parse()

	effort := eval.QuickEffort(*seed)
	if *full {
		effort = eval.FullEffort(*seed)
	}

	selected := map[string]bool{}
	if *expFlag == "all" {
		for _, e := range []string{"fig1", "fig3", "table1", "table3", "fig5", "fig6", "fig7", "fig8", "instances", "ablation"} {
			selected[e] = true
		}
	} else {
		for _, e := range strings.Split(*expFlag, ",") {
			selected[strings.TrimSpace(e)] = true
		}
	}

	run := func(name, title string, fn func() (string, error)) {
		if !selected[name] {
			return
		}
		fmt.Printf("\n=== %s — %s ===\n", strings.ToUpper(name), title)
		start := time.Now()
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("(%s in %s)\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", "benchmark specifications", func() (string, error) {
		t := eval.Table1(effort.Seed)
		return t.String(), nil
	})
	run("fig1", "n-sigma rule degradation with scale", func() (string, error) {
		rows, err := eval.Fig1(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderFig1(rows), nil
	})
	run("fig3", "span duration CDF", func() (string, error) {
		s, err := eval.Fig3(effort)
		if err != nil {
			return "", err
		}
		return s.String(), nil
	})
	run("table3", "RCA accuracy comparison", func() (string, error) {
		res, err := eval.Table3(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderTable3(res), nil
	})
	run("fig5", "training/inference scaling", func() (string, error) {
		rows, err := eval.Fig5(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderFig5(rows), nil
	})
	run("fig6", "service updates", func() (string, error) {
		points, err := eval.Fig6(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderFig6(points), nil
	})
	run("fig7", "transfer learning", func() (string, error) {
		points, err := eval.Fig7(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderFig7(points), nil
	})
	run("fig8", "semantic sensitivity", func() (string, error) {
		points, err := eval.Fig8(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderFig8(points), nil
	})
	run("instances", "instance-level (service/pod/node) accuracy", func() (string, error) {
		il, err := eval.InstanceTable(effort)
		if err != nil {
			return "", err
		}
		return eval.RenderInstanceLevel(il), nil
	})
	run("ablation", "design-choice ablations", func() (string, error) {
		var b strings.Builder
		dmax, err := eval.AblationDmax(effort)
		if err != nil {
			return "", err
		}
		b.WriteString("d_max ancestor window:\n")
		b.WriteString(eval.RenderAblationDmax(dmax))
		win, err := eval.AblationClippedReLU(effort)
		if err != nil {
			return "", err
		}
		b.WriteString("\nEq. 2 aggregation window:\n")
		b.WriteString(eval.RenderAblationWindow(win))
		epsRows, err := eval.AblationEpsilon(effort)
		if err != nil {
			return "", err
		}
		b.WriteString("\nHDBSCAN selection epsilon:\n")
		b.WriteString(eval.RenderAblationEpsilon(epsRows))
		return b.String(), nil
	})
}
