// Command modelserver runs the centralized model server of §4: an HTTP
// registry maintaining the life cycle of trained Sleuth models — publish,
// fetch (latest or pinned version), lineage, retire.
//
// Usage:
//
//	modelserver -addr :8500 -dir ./models
//
// API:
//
//	GET  /models                          list all versions (JSON)
//	POST /models/{name}?trainedOn=...&parent={name}@{ver}   publish gob blob
//	GET  /models/{name}/latest            newest non-retired blob
//	GET  /models/{name}/{version}         pinned blob
//	GET  /models/{name}/{version}/lineage ancestry (JSON)
//	POST /models/{name}/{version}/retire  retire a version
//	POST /models/{name}/{version}/score   batched inference (JSON spans)
//	GET  /healthz                         liveness + build info (JSON)
//	GET  /metrics                         Prometheus text exposition
//	GET  /debug/metrics                   metrics snapshot (JSON)
//	GET  /debug/series                    time-series ring buffers (JSON)
//	GET  /debug/traces                    tail-sampled self-trace ring (JSON)
//	GET  /debug/pprof/...                 runtime profiles
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/sleuth-rca/sleuth/internal/modelserver"
	"github.com/sleuth-rca/sleuth/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", ":8500", "listen address")
		dir       = flag.String("dir", "models", "registry directory")
		enableObs = flag.Bool("obs", true, "enable the metrics registry and /debug endpoints")
		accessLog = flag.Bool("access-log", true, "log one structured line per request")
		sample    = flag.Duration("sample", obs.EnvSampleInterval(10*time.Second),
			"metric sampling interval for /debug/series (0 disables; SLEUTH_OBS_SAMPLE overrides the default)")
		selfpost = flag.String("selfpost", os.Getenv("SLEUTH_OBS_SELFPOST"),
			"mirror sampled self-traces to this collector URL for the dogfood loop (SLEUTH_OBS_SELFPOST overrides the default)")
	)
	flag.Parse()
	if *enableObs {
		obs.Enable()
		if *sample > 0 {
			obs.StartSampler(*sample)
		}
		if *selfpost != "" {
			obs.EnableSelfPost(*selfpost)
		}
	}
	reg, err := modelserver.Open(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "modelserver: %v\n", err)
		os.Exit(1)
	}
	server := &modelserver.Server{Registry: reg}
	if *accessLog {
		server.AccessLog = obs.NewAccessLogger()
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("model server listening on %s (registry %s, %d models)\n", *addr, *dir, len(reg.List()))
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "modelserver: %v\n", err)
		os.Exit(1)
	}
}
