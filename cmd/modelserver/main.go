// Command modelserver runs the centralized model server of §4: an HTTP
// registry maintaining the life cycle of trained Sleuth models — publish,
// fetch (latest or pinned version), lineage, retire.
//
// Usage:
//
//	modelserver -addr :8500 -dir ./models
//
// API:
//
//	GET  /models                          list all versions (JSON)
//	POST /models/{name}?trainedOn=...&parent={name}@{ver}   publish gob blob
//	GET  /models/{name}/latest            newest non-retired blob
//	GET  /models/{name}/{version}         pinned blob
//	GET  /models/{name}/{version}/lineage ancestry (JSON)
//	POST /models/{name}/{version}/retire  retire a version
//	POST /models/{name}/{version}/score   batched inference (JSON spans)
//	POST /cluster/add                     stream spans into incremental clustering
//	GET  /cluster/stats                   incremental clustering snapshot (JSON)
//	POST /cluster/rebuild                 force a full recluster
//	GET  /healthz                         liveness + build info (JSON)
//	GET  /readyz                          readiness: cache warm + watchdog (JSON)
//	GET  /metrics                         Prometheus text exposition (incl. ALERTS)
//	GET  /debug/alerts                    watchdog alert states (JSON)
//	GET  /debug/metrics                   metrics snapshot (JSON)
//	GET  /debug/series                    time-series ring buffers (JSON)
//	GET  /debug/traces                    tail-sampled self-trace ring (JSON)
//	GET  /debug/pprof/...                 runtime profiles
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"github.com/sleuth-rca/sleuth/internal/modelserver"
	"github.com/sleuth-rca/sleuth/internal/obs"
	"github.com/sleuth-rca/sleuth/internal/obs/alert"
)

func main() {
	var (
		addr      = flag.String("addr", ":8500", "listen address")
		dir       = flag.String("dir", "models", "registry directory")
		enableObs = flag.Bool("obs", true, "enable the metrics registry and /debug endpoints")
		accessLog = flag.Bool("access-log", true, "log one structured line per request")
		sample    = flag.Duration("sample", obs.EnvSampleInterval(10*time.Second),
			"metric sampling interval for /debug/series (0 disables; SLEUTH_OBS_SAMPLE overrides the default)")
		selfpost = flag.String("selfpost", os.Getenv("SLEUTH_OBS_SELFPOST"),
			"mirror sampled self-traces to this collector URL for the dogfood loop (SLEUTH_OBS_SELFPOST overrides the default)")
		serveBatch = flag.Int("serve-batch", 0,
			"max traces coalesced into one shared /score inference (0 = SLEUTH_SERVE_BATCH or 32; <=1 disables micro-batching)")
		serveWait = flag.Duration("serve-wait", 0,
			"max time a queued /score request waits for co-batched company (0 = SLEUTH_SERVE_WAIT or 2ms)")
		predictWorkers = flag.Int("predict-workers", 0,
			"inference workers per shared score call (0 = SLEUTH_PREDICT_WORKERS or GOMAXPROCS)")
		clusterStream = flag.Bool("cluster", false,
			"enable the streaming clustering endpoints (/cluster/add, /cluster/stats, /cluster/rebuild)")
		watchdog = flag.Bool("watchdog", true,
			"run the self-watchdog alert engine over the metrics registry (needs -obs)")
		alertRules = flag.String("alert-rules", os.Getenv("SLEUTH_OBS_ALERTS"),
			"JSON watchdog rule file loaded on top of the default pack (SLEUTH_OBS_ALERTS overrides the default)")
		alertTick = flag.Duration("alert-tick", alert.EnvTickInterval(15*time.Second),
			"watchdog evaluation interval (SLEUTH_OBS_ALERT_TICK overrides the default)")
	)
	flag.Parse()
	if *enableObs {
		obs.Enable()
		if *sample > 0 {
			obs.StartSampler(*sample)
		}
		if *selfpost != "" {
			obs.EnableSelfPost(*selfpost)
		}
	}
	reg, err := modelserver.Open(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "modelserver: %v\n", err)
		os.Exit(1)
	}
	server := &modelserver.Server{
		Registry: reg,
		Serve: modelserver.ServeConfig{
			Batch:   *serveBatch,
			Wait:    *serveWait,
			Workers: *predictWorkers,
		},
	}
	if *clusterStream {
		server.Cluster = modelserver.NewStreamCluster()
	}
	if *accessLog {
		server.AccessLog = obs.NewAccessLogger()
	}

	// Preload served model versions so /readyz flips ready only once the
	// first score request would hit the in-memory cache.
	warmed := reg.WarmCache()

	// Self-watchdog: default serving pack (p99 burn rate, error-rate burn,
	// batcher queueing, score drift) plus any operator rule file. A score
	// drift alert triggers a full recluster when streaming clustering is
	// on — the drift hook the incremental engine consumes.
	var engine *alert.Engine
	if *watchdog {
		engine = alert.New(obs.Global(), *alertTick)
		if err := engine.Add(alert.ModelServerRules()...); err != nil {
			fmt.Fprintf(os.Stderr, "modelserver: %v\n", err)
			os.Exit(1)
		}
		if *alertRules != "" {
			rules, err := alert.LoadRulesFile(*alertRules)
			if err == nil {
				err = engine.Add(rules...)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "modelserver: %v\n", err)
				os.Exit(1)
			}
		}
		if cl := server.Cluster; cl != nil {
			// The engine delivers drift events on its tick goroutine, so a
			// full recluster must not run inline: it would stall every other
			// rule and eventually trip the watchdog's own readiness check.
			var rebuilding atomic.Bool
			engine.OnDrift(func(ev alert.DriftEvent) {
				if !rebuilding.CompareAndSwap(false, true) {
					return // a rebuild is already in flight
				}
				fmt.Fprintf(os.Stderr, "modelserver: drift alert %s (psi=%.3f ks=%.3f) — reclustering\n",
					ev.Rule, ev.PSI, ev.KS)
				go func() {
					defer rebuilding.Store(false)
					cl.Rebuild()
				}()
			})
		}
		engine.Register()
		engine.Start()
	}
	server.Ready = append(server.Ready, engine.ReadyCheck())
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("model server listening on %s (registry %s, %d models, %d warmed, watchdog rules=%d)\n",
		*addr, *dir, len(reg.List()), warmed, engine.RuleCount())
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "modelserver: %v\n", err)
		os.Exit(1)
	}
}
