// Command collector runs the HTTP trace collector (§4): it accepts
// OTLP-style, Zipkin-style and Jaeger-style JSON on the standard endpoint
// paths and persists the spans to a JSONL file on shutdown or on demand.
//
// Usage:
//
//	collector -addr :4318 -out spans.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/sleuth-rca/sleuth/internal/collector"
	"github.com/sleuth-rca/sleuth/internal/obs"
	"github.com/sleuth-rca/sleuth/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":4318", "listen address")
		out       = flag.String("out", "spans.jsonl", "spans JSONL written on shutdown")
		enableObs = flag.Bool("obs", true, "enable the metrics registry and /debug endpoints")
		accessLog = flag.Bool("access-log", false, "log one structured line per request")
		sample    = flag.Duration("sample", obs.EnvSampleInterval(10*time.Second),
			"metric sampling interval for /debug/series (0 disables; SLEUTH_OBS_SAMPLE overrides the default)")
		flushFile = flag.String("flush-file", "", "append JSONL metric snapshots to this file")
		flushURL  = flag.String("flush-url", "", "POST JSONL metric snapshots to this URL")
		flushIvl  = flag.Duration("flush-interval", 10*time.Second, "metric flush interval")
	)
	flag.Parse()

	if *enableObs {
		obs.Enable()
		if *sample > 0 {
			obs.StartSampler(*sample)
		}
	}
	var flusher *obs.Flusher
	if *flushFile != "" || *flushURL != "" {
		var err error
		flusher, err = obs.NewFlusher(obs.Global(), obs.FlusherOptions{
			Interval: *flushIvl, Path: *flushFile, URL: *flushURL,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "collector: %v\n", err)
			os.Exit(1)
		}
		flusher.Start()
	}
	st := store.New()
	col := collector.New(st)
	if *accessLog {
		col.AccessLog = obs.NewAccessLogger()
	}
	srv := &http.Server{Addr: *addr, Handler: col.Handler(), ReadHeaderTimeout: 10 * time.Second}

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		fmt.Printf("collector listening on %s (POST /v1/traces, /api/v2/spans, /api/traces)\n", *addr)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "collector: %v\n", err)
			os.Exit(1)
		}
	}()
	<-done

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if flusher != nil {
		flusher.Stop()
	}
	obs.StopSampler()
	if err := st.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "collector: saving spans: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("saved %d spans (%d traces) to %s\n", st.SpanCount(), st.TraceCount(), *out)
}
