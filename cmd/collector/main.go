// Command collector runs the HTTP trace collector (§4): it accepts
// OTLP-style, Zipkin-style and Jaeger-style JSON on the standard endpoint
// paths and persists the spans to a JSONL file on shutdown or on demand.
//
// Usage:
//
//	collector -addr :4318 -out spans.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/sleuth-rca/sleuth/internal/collector"
	"github.com/sleuth-rca/sleuth/internal/ingest"
	"github.com/sleuth-rca/sleuth/internal/obs"
	"github.com/sleuth-rca/sleuth/internal/obs/alert"
	"github.com/sleuth-rca/sleuth/internal/store"
)

func main() {
	defaults := ingest.DefaultConfig()
	var (
		addr      = flag.String("addr", ":4318", "listen address")
		out       = flag.String("out", "spans.jsonl", "spans JSONL written on shutdown")
		enableObs = flag.Bool("obs", true, "enable the metrics registry and /debug endpoints")
		accessLog = flag.Bool("access-log", false, "log one structured line per request")
		sample    = flag.Duration("sample", obs.EnvSampleInterval(10*time.Second),
			"metric sampling interval for /debug/series (0 disables; SLEUTH_OBS_SAMPLE overrides the default)")
		flushFile = flag.String("flush-file", "", "append JSONL metric snapshots to this file")
		flushURL  = flag.String("flush-url", "", "POST JSONL metric snapshots to this URL")
		flushIvl  = flag.Duration("flush-interval", 10*time.Second, "metric flush interval")
		selfpost  = flag.String("selfpost", os.Getenv("SLEUTH_OBS_SELFPOST"),
			"mirror sampled self-traces to this collector URL for the dogfood loop (SLEUTH_OBS_SELFPOST overrides the default; may point at this process)")
		watchdog = flag.Bool("watchdog", true,
			"run the self-watchdog alert engine over the metrics registry (needs -obs)")
		alertRules = flag.String("alert-rules", os.Getenv("SLEUTH_OBS_ALERTS"),
			"JSON watchdog rule file loaded on top of the default pack (SLEUTH_OBS_ALERTS overrides the default)")
		alertTick = flag.Duration("alert-tick", alert.EnvTickInterval(15*time.Second),
			"watchdog evaluation interval (SLEUTH_OBS_ALERT_TICK overrides the default)")

		ingestWorkers = flag.Int("ingest-workers", defaults.Workers,
			"concentrator/sampler/writer shards (SLEUTH_INGEST_WORKERS overrides the default)")
		ingestSample = flag.Float64("ingest-sample", defaults.SampleRate,
			"tail-sampling keep rate for healthy traces, 0..1 (SLEUTH_INGEST_SAMPLE overrides the default; error and latency-outlier traces are always kept)")
		ingestTTL = flag.Duration("ingest-ttl", defaults.TraceTTL,
			"how long a trace window stays open after its last span (SLEUTH_INGEST_TTL overrides the default)")
		ingestTailPct = flag.Float64("ingest-tail-pct", defaults.TailPercentile,
			"OpSummaries percentile above which a root duration is a kept outlier (SLEUTH_INGEST_TAIL_PCT overrides the default)")
	)
	flag.Parse()

	if *enableObs {
		obs.Enable()
		if *sample > 0 {
			obs.StartSampler(*sample)
		}
		if *selfpost != "" {
			obs.EnableSelfPost(*selfpost)
		}
	}
	var flusher *obs.Flusher
	if *flushFile != "" || *flushURL != "" {
		var err error
		flusher, err = obs.NewFlusher(obs.Global(), obs.FlusherOptions{
			Interval: *flushIvl, Path: *flushFile, URL: *flushURL,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "collector: %v\n", err)
			os.Exit(1)
		}
		flusher.Start()
	}
	st := store.New()
	cfg := defaults
	cfg.Workers = *ingestWorkers
	cfg.SampleRate = *ingestSample
	if cfg.SampleRate == 0 {
		cfg.SampleRate = -1 // explicit 0 sheds every healthy trace
	}
	cfg.TraceTTL = *ingestTTL
	cfg.TailPercentile = *ingestTailPct
	pipe := ingest.NewPipeline(st, cfg)
	col := collector.NewWithPipeline(st, pipe)
	if *accessLog {
		col.AccessLog = obs.NewAccessLogger()
	}

	// Self-watchdog: the default collector pack plus any operator rule
	// file, evaluated on a background tick. A disabled watchdog (or
	// disabled obs) yields a nil engine — every call below is a no-op and
	// the /readyz check always passes.
	var engine *alert.Engine
	if *watchdog {
		engine = alert.New(obs.Global(), *alertTick)
		if err := engine.Add(alert.CollectorRules()...); err != nil {
			fmt.Fprintf(os.Stderr, "collector: %v\n", err)
			os.Exit(1)
		}
		if *alertRules != "" {
			rules, err := alert.LoadRulesFile(*alertRules)
			if err == nil {
				err = engine.Add(rules...)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "collector: %v\n", err)
				os.Exit(1)
			}
		}
		engine.Register()
		engine.Start()
	}
	col.Ready = append(col.Ready, engine.ReadyCheck())
	srv := &http.Server{Addr: *addr, Handler: col.Handler(), ReadHeaderTimeout: 10 * time.Second}

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		fmt.Printf("collector listening on %s (POST /v1/traces, /api/v2/spans, /api/traces; ingest: %d workers, sample=%.2f, ttl=%s, store shards=%d)\n",
			*addr, cfg.Workers, *ingestSample, cfg.TraceTTL, st.Shards())
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "collector: %v\n", err)
			os.Exit(1)
		}
	}()
	<-done

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	engine.Stop()
	col.Close() // drain open trace windows into the store
	if flusher != nil {
		flusher.Stop()
	}
	obs.StopSampler()
	if err := st.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "collector: saving spans: %v\n", err)
		os.Exit(1)
	}
	stats := pipe.Stats()
	fmt.Printf("saved %d spans (%d traces) to %s (written=%d shed=%d dropped=%d)\n",
		st.SpanCount(), st.TraceCount(), *out, stats.SpansWritten, stats.SpansShed, stats.SpansDropped)
}
